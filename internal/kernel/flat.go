package kernel

import (
	"fmt"
	"math"
	"sync"

	"pmjoin/internal/geom"
)

// FlatPage is a page's points flattened into one contiguous row-major block:
// point i occupies Data[i*Dim : (i+1)*Dim]. Batch kernels walk it linearly
// instead of pointer-chasing a []geom.Vector, so the inner loop stays in one
// stream of cache lines. Pages build their FlatPage once (lazily, or eagerly
// via the buffer pool's load hook) and reuse it for every probe.
type FlatPage struct {
	Dim  int
	N    int
	Data []float64 // len N*Dim, row-major
}

// NewFlatPage returns an empty flat page for points of the given
// dimensionality, with capacity for n of them.
func NewFlatPage(dim, n int) *FlatPage {
	return &FlatPage{Dim: dim, Data: make([]float64, 0, dim*n)}
}

// AppendRow copies one point into the block. The row must have Dim
// coordinates.
func (f *FlatPage) AppendRow(row []float64) {
	if len(row) != f.Dim {
		panic(fmt.Sprintf("kernel: row of %d coordinates in flat page of dim %d", len(row), f.Dim))
	}
	f.Data = append(f.Data, row...)
	f.N++
}

// Row returns point i as a slice into the block (full-capacity cut, so an
// append by the caller cannot clobber the neighbor row).
func (f *FlatPage) Row(i int) []float64 {
	off := i * f.Dim
	return f.Data[off : off+f.Dim : off+f.Dim]
}

// blockDim is the dimensionality at which the batch kernel switches from the
// plain sequential loops to the blocked ones below. Under it the blocked
// prologue costs more than it saves.
const blockDim = 8

// reassocBand returns the relative margin the blocked loops keep around a
// limit on a sum of dim non-negative terms. Re-associating such a sum into
// four accumulators perturbs it by at most ~dim ulps relative (the terms are
// non-negative, so the condition number is 1); the band is orders of
// magnitude wider, and a sum landing inside it — a ~1e-9 relative sliver the
// random traffic of a join essentially never hits — is re-decided by the
// exact sequential fallback. Same construction as the p>=3 Pow band.
func reassocBand(dim int) float64 {
	return 1e-9 + float64(dim)*4e-16
}

// PagePairWithin tests probe against every point of page under t, appending
// the indices of points within the threshold to out (a caller-owned scratch
// buffer, typically reused across probes) and returning the extended slice.
// Index k is appended exactly when t.Within(probe, page.Row(k)) holds, in
// ascending k order. The probe must have page.Dim coordinates.
//
// For dim >= 8 the sum norms run a blocked loop: eight coordinates per
// iteration feeding four independent accumulators (the sequential
// add-after-add dependency chain, not the multiplies, bounds the plain loop),
// with one early-abandon branch per block instead of per coordinate. The
// re-associated sum is compared against a banded limit (reassocBand); only
// the sliver between certain-within and certain-outside re-runs the exact
// sequential test, so the result still matches t.Within bit for bit.
func PagePairWithin(t *Threshold, probe []float64, page *FlatPage, out []int) []int {
	if t.never || page.N == 0 {
		return out
	}
	dim := page.Dim
	if len(probe) != dim {
		panic(fmt.Sprintf("kernel: probe of %d coordinates against page of dim %d", len(probe), dim))
	}
	probe = probe[:dim:dim]
	data := page.Data
	if dim >= blockDim {
		switch {
		case t.p == 0:
			return pagePairInfBlocked(t, probe, page, out)
		case t.p <= 2:
			return pagePairSumBlocked(t, probe, page, out)
		case t.p == 3:
			return pagePairCubeBlocked(t, probe, page, out)
		}
	}
	switch t.p {
	case 0:
		lim := t.lim
	scanInf:
		for k := 0; k < page.N; k++ {
			row := data[k*dim : (k+1)*dim]
			for j, rv := range row {
				if math.Abs(probe[j]-rv) > lim {
					continue scanInf
				}
			}
			out = append(out, k)
		}
	case 1:
		lim := t.lim
	scanL1:
		for k := 0; k < page.N; k++ {
			row := data[k*dim : (k+1)*dim]
			var s float64
			for j, rv := range row {
				s += math.Abs(probe[j] - rv)
				if s > lim {
					continue scanL1
				}
			}
			if s <= lim {
				out = append(out, k)
			}
		}
	case 2:
		lim := t.lim
	scanL2:
		for k := 0; k < page.N; k++ {
			row := data[k*dim : (k+1)*dim]
			var s float64
			for j, rv := range row {
				d := probe[j] - rv
				s += d * d
				if s > lim {
					continue scanL2
				}
			}
			// s <= lim also rejects NaN sums, which skip the > abandon.
			if s <= lim {
				out = append(out, k)
			}
		}
	default:
	scanLp:
		for k := 0; k < page.N; k++ {
			row := data[k*dim : (k+1)*dim]
			var s float64
			for j, rv := range row {
				s += geom.PowInt(math.Abs(probe[j]-rv), t.p)
				if s > t.hi {
					continue scanLp
				}
			}
			if s <= t.lo || t.scale*math.Pow(s, t.invP) <= t.eps {
				out = append(out, k)
			}
		}
	}
	return out
}

// pagePairInfBlocked is the blocked L∞ scan: eight coordinate tests per
// branchy-but-predictable block, each compared against the limit directly.
// No arithmetic is re-associated, so it is exact with no fallback.
func pagePairInfBlocked(t *Threshold, probe []float64, page *FlatPage, out []int) []int {
	dim := page.Dim
	lim := t.lim
	data := page.Data
scan:
	for k := 0; k < page.N; k++ {
		base := k * dim
		row := data[base : base+dim : base+dim]
		j := 0
		for ; j+8 <= dim; j += 8 {
			r8 := row[j : j+8 : j+8]
			p8 := probe[j : j+8 : j+8]
			if math.Abs(p8[0]-r8[0]) > lim || math.Abs(p8[1]-r8[1]) > lim ||
				math.Abs(p8[2]-r8[2]) > lim || math.Abs(p8[3]-r8[3]) > lim ||
				math.Abs(p8[4]-r8[4]) > lim || math.Abs(p8[5]-r8[5]) > lim ||
				math.Abs(p8[6]-r8[6]) > lim || math.Abs(p8[7]-r8[7]) > lim {
				continue scan
			}
		}
		for ; j < dim; j++ {
			if math.Abs(probe[j]-row[j]) > lim {
				continue scan
			}
		}
		out = append(out, k)
	}
	return out
}

// pagePairSumBlocked is the blocked L1/L2 scan: four independent accumulators
// over blocks of eight, one abandon branch per sixteen coordinates (checking
// per block costs more in mispredictions than the skipped arithmetic saves),
// banded limits with the exact sequential t.Within deciding the sliver.
func pagePairSumBlocked(t *Threshold, probe []float64, page *FlatPage, out []int) []int {
	if useSIMD {
		return pagePairSumSIMD(t, probe, page, out)
	}
	dim := page.Dim
	data := page.Data
	band := reassocBand(dim)
	loB := t.lim * (1 - band)
	hiB := t.lim * (1 + band)
	l1 := t.p == 1
scan:
	for k := 0; k < page.N; k++ {
		base := k * dim
		row := data[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		if l1 {
			for ; j+16 <= dim; j += 16 {
				r8 := row[j : j+16 : j+16]
				p8 := probe[j : j+16 : j+16]
				s0 += math.Abs(p8[0]-r8[0]) + math.Abs(p8[4]-r8[4])
				s1 += math.Abs(p8[1]-r8[1]) + math.Abs(p8[5]-r8[5])
				s2 += math.Abs(p8[2]-r8[2]) + math.Abs(p8[6]-r8[6])
				s3 += math.Abs(p8[3]-r8[3]) + math.Abs(p8[7]-r8[7])
				s0 += math.Abs(p8[8]-r8[8]) + math.Abs(p8[12]-r8[12])
				s1 += math.Abs(p8[9]-r8[9]) + math.Abs(p8[13]-r8[13])
				s2 += math.Abs(p8[10]-r8[10]) + math.Abs(p8[14]-r8[14])
				s3 += math.Abs(p8[11]-r8[11]) + math.Abs(p8[15]-r8[15])
				if (s0+s1)+(s2+s3) > hiB {
					continue scan
				}
			}
			if j+8 <= dim {
				r8 := row[j : j+8 : j+8]
				p8 := probe[j : j+8 : j+8]
				s0 += math.Abs(p8[0]-r8[0]) + math.Abs(p8[4]-r8[4])
				s1 += math.Abs(p8[1]-r8[1]) + math.Abs(p8[5]-r8[5])
				s2 += math.Abs(p8[2]-r8[2]) + math.Abs(p8[6]-r8[6])
				s3 += math.Abs(p8[3]-r8[3]) + math.Abs(p8[7]-r8[7])
				j += 8
			}
			for ; j < dim; j++ {
				s0 += math.Abs(probe[j] - row[j])
			}
		} else {
			for ; j+16 <= dim; j += 16 {
				r8 := row[j : j+16 : j+16]
				p8 := probe[j : j+16 : j+16]
				d0 := p8[0] - r8[0]
				d1 := p8[1] - r8[1]
				d2 := p8[2] - r8[2]
				d3 := p8[3] - r8[3]
				d4 := p8[4] - r8[4]
				d5 := p8[5] - r8[5]
				d6 := p8[6] - r8[6]
				d7 := p8[7] - r8[7]
				s0 += d0*d0 + d4*d4
				s1 += d1*d1 + d5*d5
				s2 += d2*d2 + d6*d6
				s3 += d3*d3 + d7*d7
				d0 = p8[8] - r8[8]
				d1 = p8[9] - r8[9]
				d2 = p8[10] - r8[10]
				d3 = p8[11] - r8[11]
				d4 = p8[12] - r8[12]
				d5 = p8[13] - r8[13]
				d6 = p8[14] - r8[14]
				d7 = p8[15] - r8[15]
				s0 += d0*d0 + d4*d4
				s1 += d1*d1 + d5*d5
				s2 += d2*d2 + d6*d6
				s3 += d3*d3 + d7*d7
				if (s0+s1)+(s2+s3) > hiB {
					continue scan
				}
			}
			if j+8 <= dim {
				r8 := row[j : j+8 : j+8]
				p8 := probe[j : j+8 : j+8]
				d0 := p8[0] - r8[0]
				d1 := p8[1] - r8[1]
				d2 := p8[2] - r8[2]
				d3 := p8[3] - r8[3]
				d4 := p8[4] - r8[4]
				d5 := p8[5] - r8[5]
				d6 := p8[6] - r8[6]
				d7 := p8[7] - r8[7]
				s0 += d0*d0 + d4*d4
				s1 += d1*d1 + d5*d5
				s2 += d2*d2 + d6*d6
				s3 += d3*d3 + d7*d7
				j += 8
			}
			for ; j < dim; j++ {
				d := probe[j] - row[j]
				s0 += d * d
			}
		}
		s := (s0 + s1) + (s2 + s3)
		if s <= loB {
			out = append(out, k)
		} else if !(s > hiB) && t.Within(probe, row) {
			// Inside the band (or a NaN sum): the blocked sum cannot decide;
			// the sequential reference does, exactly.
			out = append(out, k)
		}
	}
	return out
}

// sumsPool recycles the row-sum scratch buffer of the vector path across
// page-pair calls, keeping it allocation-free in steady state.
var sumsPool = sync.Pool{New: func() any { s := make([]float64, 0, 256); return &s }}

// pagePairSumSIMD computes every row's re-associated L1/L2 statistic with
// the AVX2+FMA kernels of sums_amd64.s — no early abandon, but four lanes
// per cycle and one fused multiply-add per L2 term — then classifies the
// sums against the banded limits exactly like the scalar blocked loop:
// certain-within and certain-outside decide immediately, the band sliver
// re-runs the exact sequential test.
func pagePairSumSIMD(t *Threshold, probe []float64, page *FlatPage, out []int) []int {
	dim := page.Dim
	sp := sumsPool.Get().(*[]float64)
	sums := *sp
	if cap(sums) < page.N {
		sums = make([]float64, page.N)
	}
	sums = sums[:page.N]
	data := page.Data[: page.N*dim : page.N*dim]
	if t.p == 1 {
		l1SumsAsm(probe, data, sums, dim)
	} else {
		l2SumsAsm(probe, data, sums, dim)
	}
	band := reassocBand(dim)
	loB := t.lim * (1 - band)
	hiB := t.lim * (1 + band)
	for k, s := range sums {
		if s <= loB {
			out = append(out, k)
		} else if !(s > hiB) && t.Within(probe, page.Row(k)) {
			out = append(out, k)
		}
	}
	*sp = sums
	sumsPool.Put(sp)
	return out
}

// pagePairCubeBlocked is the blocked L3 scan: |d|³ terms inlined (the same
// multiply order as geom.PowInt, so term values are bit-identical), banded
// against the Pow band from setPowBand widened by the re-association margin,
// with t.Within deciding the sliver.
func pagePairCubeBlocked(t *Threshold, probe []float64, page *FlatPage, out []int) []int {
	dim := page.Dim
	data := page.Data
	band := reassocBand(dim)
	loB := t.lo * (1 - band)
	hiB := t.hi * (1 + band)
scan:
	for k := 0; k < page.N; k++ {
		base := k * dim
		row := data[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+8 <= dim; j += 8 {
			r8 := row[j : j+8 : j+8]
			p8 := probe[j : j+8 : j+8]
			d0 := math.Abs(p8[0] - r8[0])
			d1 := math.Abs(p8[1] - r8[1])
			d2 := math.Abs(p8[2] - r8[2])
			d3 := math.Abs(p8[3] - r8[3])
			s0 += d0 * d0 * d0
			s1 += d1 * d1 * d1
			s2 += d2 * d2 * d2
			s3 += d3 * d3 * d3
			d0 = math.Abs(p8[4] - r8[4])
			d1 = math.Abs(p8[5] - r8[5])
			d2 = math.Abs(p8[6] - r8[6])
			d3 = math.Abs(p8[7] - r8[7])
			s0 += d0 * d0 * d0
			s1 += d1 * d1 * d1
			s2 += d2 * d2 * d2
			s3 += d3 * d3 * d3
			if (s0+s1)+(s2+s3) > hiB {
				continue scan
			}
		}
		for ; j < dim; j++ {
			d := math.Abs(probe[j] - row[j])
			s0 += d * d * d
		}
		s := (s0 + s1) + (s2 + s3)
		if s <= loB {
			out = append(out, k)
		} else if !(s > hiB) && t.Within(probe, row) {
			out = append(out, k)
		}
	}
	return out
}
