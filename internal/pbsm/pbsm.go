// Package pbsm implements the Partition Based Spatial-Merge join of Patel &
// DeWitt (SIGMOD 1996), surveyed in §2.1 of the paper. It is provided as an
// extension baseline beyond the paper's evaluated comparators.
//
// The data space is tiled by a grid on the first (up to) two dimensions;
// tiles are assigned to partitions round-robin to absorb skew. The first
// dataset's objects are assigned uniquely by their containing tile; the
// second dataset's objects are replicated to every tile their ε-extension
// intersects, so each result pair materializes in exactly one partition and
// needs no deduplication. Both datasets are scanned sequentially, partition
// files are written and then joined one partition at a time.
package pbsm

import (
	"fmt"
	"math"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
)

// Options configures a PBSM run.
type Options struct {
	// Eps is the join threshold (used for replication of the second
	// dataset's objects).
	Eps float64
	// Partitions is the number of partitions (0: chosen so an average
	// partition pair fits into half the buffer).
	Partitions int
	// TilesPerAxis is the tile-grid resolution (0: 2 * sqrt(partitions)).
	TilesPerAxis int
	// SelfJoin marks r and s as the same dataset.
	SelfJoin bool
}

// vecOf extracts the object vectors of a page payload.
func vecOf(p any) *join.VectorPage { return p.(*join.VectorPage) }

// Run executes the PBSM join of two vector datasets.
func Run(e *join.Engine, r, s *join.Dataset, j join.ObjectJoiner, opts Options) (*join.Report, error) {
	if opts.Eps < 0 {
		return nil, fmt.Errorf("pbsm: negative epsilon")
	}
	return e.Run("PBSM", func(x *join.Exec) error {
		parts := opts.Partitions
		if parts <= 0 {
			// An average partition holds (r+s)/parts pages; a pair should
			// fit into half the buffer.
			total := r.Pages + s.Pages
			parts = (2*total + e.BufferSize - 1) / max(1, e.BufferSize)
			if parts < 1 {
				parts = 1
			}
		}
		tiles := opts.TilesPerAxis
		if tiles <= 0 {
			tiles = 2 * int(math.Ceil(math.Sqrt(float64(parts))))
		}

		g, err := newGrid(x, r, s, tiles, parts)
		if err != nil {
			return err
		}

		// Partition phase: sequential scan of both datasets; objects
		// appended to per-partition staging, flushed as pages to partition
		// files.
		rParts, err := g.partition(x, r, opts.Eps, false)
		if err != nil {
			return err
		}
		sParts, err := g.partition(x, s, opts.Eps, true)
		if err != nil {
			return err
		}

		// Join phase: one partition pair at a time, block-nested inside the
		// partition when it does not fit the buffer.
		for p := 0; p < parts; p++ {
			// A partition pair is one unit of work; cancellation is honored
			// at its boundary.
			if err := x.Err(); err != nil {
				return err
			}
			rf, sf := rParts[p], sParts[p]
			rn, sn := x.IO.NumPages(rf), x.IO.NumPages(sf)
			if rn == 0 || sn == 0 {
				continue
			}
			block := e.BufferSize - 1
			for lo := 0; lo < rn; lo += block {
				hi := lo + block
				if hi > rn {
					hi = rn
				}
				if err := x.Pool.Flush(); err != nil {
					return err
				}
				for pg := lo; pg < hi; pg++ {
					if _, err := x.Pool.GetPinned(disk.PageAddr{File: rf, Page: pg}); err != nil {
						return err
					}
				}
				for q := 0; q < sn; q++ {
					sp, err := x.Pool.Get(disk.PageAddr{File: sf, Page: q})
					if err != nil {
						return err
					}
					for pg := lo; pg < hi; pg++ {
						rp, err := x.Pool.Get(disk.PageAddr{File: rf, Page: pg})
						if err != nil {
							return err
						}
						x.JoinPayloads(j, rp.Payload, sp.Payload)
					}
				}
				x.Flush()
				x.Pool.UnpinAll()
			}
		}
		return nil
	})
}

// grid maps object locations to tiles and tiles to partitions.
type grid struct {
	min, width [2]float64
	tiles      int
	parts      int
	perPage    int
}

// newGrid bounds the joint data space on (up to) the first two dimensions by
// scanning the index MBRs (free: the hierarchy is memory resident).
func newGrid(x *join.Exec, r, s *join.Dataset, tiles, parts int) (*grid, error) {
	bound := geom.Union(r.Root.MBR, s.Root.MBR)
	if bound.IsEmpty() {
		return nil, fmt.Errorf("pbsm: empty data space")
	}
	g := &grid{tiles: tiles, parts: parts}
	for d := 0; d < 2; d++ {
		if d < bound.Dim() {
			g.min[d] = bound.Min[d]
			g.width[d] = (bound.Max[d] - bound.Min[d]) / float64(tiles)
			if g.width[d] <= 0 {
				g.width[d] = 1
			}
		} else {
			g.width[d] = math.Inf(1)
		}
	}
	// Partition pages hold as many objects as source pages.
	//lint:ignore bufferbypass free metadata inspection of one page to size partition pages; not a data-path read
	pg, err := x.IO.Peek(disk.PageAddr{File: r.File, Page: 0})
	if err != nil {
		return nil, err
	}
	g.perPage = len(vecOf(pg.Payload).IDs)
	if g.perPage < 1 {
		g.perPage = 1
	}
	return g, nil
}

func (g *grid) tileCoord(d int, x float64) int {
	if math.IsInf(g.width[d], 1) {
		return 0
	}
	t := int((x - g.min[d]) / g.width[d])
	if t < 0 {
		t = 0
	}
	if t >= g.tiles {
		t = g.tiles - 1
	}
	return t
}

// tileRange returns the inclusive tile interval intersecting [lo, hi] on
// dimension d.
func (g *grid) tileRange(d int, lo, hi float64) (int, int) {
	return g.tileCoord(d, lo), g.tileCoord(d, hi)
}

func (g *grid) partOf(tx, ty int) int { return (tx*g.tiles + ty) % g.parts }

// partition scans the dataset sequentially and writes each object into its
// partition file(s): uniquely by location when replicate is false, or to
// every partition whose tiles the object's ε-box intersects when true.
func (g *grid) partition(x *join.Exec, d *join.Dataset, eps float64, replicate bool) ([]disk.FileID, error) {
	files := make([]disk.FileID, g.parts)
	staging := make([]*join.VectorPage, g.parts)
	for p := range files {
		files[p] = x.IO.CreateFile()
		staging[p] = &join.VectorPage{}
	}
	flush := func(p int) error {
		if len(staging[p].IDs) == 0 {
			return nil
		}
		addr, err := x.IO.AppendPage(files[p], staging[p])
		if err != nil {
			return err
		}
		//lint:ignore bufferbypass partition staging writes are charged directly; the pool has no write path
		if err := x.IO.Write(addr, staging[p]); err != nil {
			return err
		}
		staging[p] = &join.VectorPage{}
		return nil
	}
	add := func(p, id int, v geom.Vector) error {
		staging[p].IDs = append(staging[p].IDs, id)
		staging[p].Vecs = append(staging[p].Vecs, v)
		if len(staging[p].IDs) >= g.perPage {
			return flush(p)
		}
		return nil
	}

	seen := make(map[int]struct{}, g.parts)
	for pg := 0; pg < d.Pages; pg++ {
		// One sequential pass over the source file; charged directly so the
		// pool's frames stay free for the join phase that follows.
		//lint:ignore bufferbypass sequential partition scan charged directly, pool reserved for the join phase
		page, err := x.IO.Read(disk.PageAddr{File: d.File, Page: pg})
		if err != nil {
			return nil, err
		}
		vp := vecOf(page.Payload)
		for i, v := range vp.Vecs {
			if !replicate {
				tx := g.tileCoord(0, v[0])
				ty := 0
				if len(v) > 1 {
					ty = g.tileCoord(1, v[1])
				}
				if err := add(g.partOf(tx, ty), vp.IDs[i], v); err != nil {
					return nil, err
				}
				continue
			}
			xLo, xHi := g.tileRange(0, v[0]-eps, v[0]+eps)
			yLo, yHi := 0, 0
			if len(v) > 1 {
				yLo, yHi = g.tileRange(1, v[1]-eps, v[1]+eps)
			}
			// Several tiles can map to one partition; replicate once per
			// partition.
			clear(seen)
			for tx := xLo; tx <= xHi; tx++ {
				for ty := yLo; ty <= yHi; ty++ {
					p := g.partOf(tx, ty)
					if _, dup := seen[p]; dup {
						continue
					}
					seen[p] = struct{}{}
					if err := add(p, vp.IDs[i], v); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for p := range files {
		if err := flush(p); err != nil {
			return nil, err
		}
	}
	return files, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
