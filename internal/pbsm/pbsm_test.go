package pbsm

import (
	"math/rand"
	"testing"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
	"pmjoin/internal/rstar"
)

func buildDataset(t *testing.T, d *disk.Disk, rng *rand.Rand, n, leafCap, dim int) (*join.Dataset, []geom.Vector) {
	t.Helper()
	items := make([]rstar.Item, n)
	vecs := make([]geom.Vector, n)
	for i := range items {
		v := make(geom.Vector, dim)
		for k := range v {
			v[k] = rng.Float64()
		}
		vecs[i] = v
		items[i] = rstar.PointItem(i, v)
	}
	tr, err := rstar.BulkLoadSTR(dim, rstar.DefaultConfig(leafCap), items)
	if err != nil {
		t.Fatal(err)
	}
	pages := tr.Pack()
	f := d.CreateFile()
	for _, pg := range pages {
		payload := &join.VectorPage{}
		for _, it := range pg {
			payload.IDs = append(payload.IDs, it.ID)
			payload.Vecs = append(payload.Vecs, it.MBR.Min)
		}
		if _, err := d.AppendPage(f, payload); err != nil {
			t.Fatal(err)
		}
	}
	return &join.Dataset{Name: "ds", File: f, Root: tr.Root(), Pages: len(pages)}, vecs
}

func brute(a, b []geom.Vector, eps float64, self bool) int64 {
	var n int64
	for i, va := range a {
		for k, vb := range b {
			if self && i >= k {
				continue
			}
			if geom.L2.Dist(va, vb) <= eps {
				n++
			}
		}
	}
	return n
}

func TestPBSMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 400, 8, 2)
	db, vb := buildDataset(t, d, rng, 300, 8, 2)
	const eps = 0.06
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: eps}, Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(va, vb, eps, false); rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
	if rep.PageReads == 0 || rep.IOSeconds <= 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestPBSMSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 350, 8, 2)
	const eps = 0.05
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, da, join.VectorJoiner{Norm: geom.L2, Eps: eps, Self: true},
		Options{Eps: eps, SelfJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(va, va, eps, true); rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
}

func TestPBSMNoDuplicatesAcrossPartitionCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 400, 8, 2)
	db, vb := buildDataset(t, d, rng, 400, 8, 2)
	const eps = 0.07
	want := brute(va, vb, eps, false)
	for _, parts := range []int{1, 3, 7, 16} {
		e := &join.Engine{Disk: d, BufferSize: 12}
		rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: eps},
			Options{Eps: eps, Partitions: parts})
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if rep.Results != want {
			t.Fatalf("parts=%d: results %d, want %d (replication dedup broken)", parts, rep.Results, want)
		}
	}
}

func TestPBSMHighDimensional(t *testing.T) {
	// Tiling uses only the first two dimensions; correctness must hold in
	// any dimensionality.
	rng := rand.New(rand.NewSource(4))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 250, 6, 6)
	db, vb := buildDataset(t, d, rng, 250, 6, 6)
	eps := 0.45
	e := &join.Engine{Disk: d, BufferSize: 16}
	rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: eps}, Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(va, vb, eps, false); rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
}

func TestPBSMOneDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := disk.New(disk.DefaultModel())
	da, va := buildDataset(t, d, rng, 300, 8, 1)
	db, vb := buildDataset(t, d, rng, 300, 8, 1)
	const eps = 0.01
	e := &join.Engine{Disk: d, BufferSize: 12}
	rep, err := Run(e, da, db, join.VectorJoiner{Norm: geom.L2, Eps: eps}, Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	if want := brute(va, vb, eps, false); rep.Results != want {
		t.Fatalf("results = %d, want %d", rep.Results, want)
	}
}

func TestPBSMRejectsNegativeEps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := disk.New(disk.DefaultModel())
	da, _ := buildDataset(t, d, rng, 50, 8, 2)
	e := &join.Engine{Disk: d, BufferSize: 8}
	if _, err := Run(e, da, da, join.VectorJoiner{Norm: geom.L2, Eps: 1}, Options{Eps: -1}); err == nil {
		t.Fatal("negative eps accepted")
	}
}
