// Package dataset generates the synthetic workloads that substitute for the
// paper's datasets (documented in DESIGN.md):
//
//   - RoadIntersections: clustered 2-d points standing in for the LBeach
//     (53,145) and MCounty (39,231) TIGER road-intersection sets.
//   - Landsat: correlated 60-d feature vectors standing in for the 275,465
//     satellite-image vectors, split into 8 equal non-overlapping parts.
//   - DNA: synthetic nucleotide sequences with planted homologies standing
//     in for human/mouse chromosome 18 (4,225,477 / 2,313,942 nt).
//   - RandomWalk: stock-price-like series for the subsequence-join examples.
//
// All generators are deterministic in their seed.
package dataset

import (
	"math"
	"math/rand"

	"pmjoin/internal/geom"
)

// Paper cardinalities, used at full scale.
const (
	LBeachSize  = 53145
	MCountySize = 39231
	LandsatSize = 275465
	LandsatDim  = 60
	HChr18Size  = 4225477
	MChr18Size  = 2313942
)

// RoadIntersections generates n clustered 2-d points in the unit square.
// Points are drawn from a mixture of Gaussian clusters strung along random
// polylines ("roads") plus a small uniform background, reproducing the
// spatial skew of road-intersection data that makes prediction matrices
// sparse.
func RoadIntersections(n int, seed int64) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	const roads = 40
	type segment struct {
		x0, y0, x1, y1 float64
	}
	segs := make([]segment, roads)
	for i := range segs {
		x0, y0 := rng.Float64(), rng.Float64()
		ang := rng.Float64() * 2 * math.Pi
		length := 0.2 + 0.5*rng.Float64()
		segs[i] = segment{x0, y0, x0 + length*math.Cos(ang), y0 + length*math.Sin(ang)}
	}
	out := make([]geom.Vector, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.05 {
			out[i] = geom.Vector{rng.Float64(), rng.Float64()}
			continue
		}
		s := segs[rng.Intn(roads)]
		t := rng.Float64()
		x := s.x0 + t*(s.x1-s.x0) + rng.NormFloat64()*0.01
		y := s.y0 + t*(s.y1-s.y0) + rng.NormFloat64()*0.01
		out[i] = geom.Vector{clamp01(x), clamp01(y)}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Landsat generates n dim-dimensional feature vectors with the
// characteristics of satellite-image features: values fall into a moderate
// number of spectral clusters and neighbouring dimensions are strongly
// correlated (each vector is a noisy random walk across dimensions around
// its cluster's profile).
func Landsat(n, dim int, seed int64) []geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 32
	profiles := make([]geom.Vector, clusters)
	for c := range profiles {
		p := make(geom.Vector, dim)
		v := rng.Float64()
		for d := 0; d < dim; d++ {
			v += rng.NormFloat64() * 0.05
			p[d] = v
		}
		profiles[c] = p
	}
	out := make([]geom.Vector, n)
	for i := 0; i < n; i++ {
		p := profiles[rng.Intn(clusters)]
		v := make(geom.Vector, dim)
		drift := 0.0
		for d := 0; d < dim; d++ {
			drift = drift*0.8 + rng.NormFloat64()*0.02
			v[d] = p[d] + drift
		}
		out[i] = v
	}
	return out
}

// SplitEqual splits vecs into k equal-sized non-overlapping parts after a
// deterministic shuffle (the paper splits Landsat randomly into 8 parts).
// Trailing remainder vectors are dropped so parts are exactly equal.
func SplitEqual(vecs []geom.Vector, k int, seed int64) [][]geom.Vector {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]geom.Vector(nil), vecs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	per := len(shuffled) / k
	parts := make([][]geom.Vector, k)
	for i := 0; i < k; i++ {
		parts[i] = shuffled[i*per : (i+1)*per]
	}
	return parts
}

// DNA generates a synthetic nucleotide sequence of length n with the
// compositional structure of mammalian chromosomes: an average GC content
// near 41% that drifts across isochore-like segments (tens of kilobases with
// their own GC level), plus local tandem repeats. The isochore drift is what
// makes window frequency vectors separable — pages from different segments
// have frequency distance far above small edit thresholds — reproducing the
// sparse, banded prediction matrices the paper reports for chromosome 18.
func DNA(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	out := make([]byte, 0, n)
	segRemain := 0
	gc, atSkew, cgSkew := 0.41, 0.0, 0.0
	drift := 0
	for len(out) < n {
		if segRemain <= 0 {
			// New isochore: 20-120 kb with its own GC level and strand
			// skews (GC skew and AT skew vary across mammalian chromatin).
			segRemain = 20000 + rng.Intn(100000)
			gc = clampF(0.41+rng.NormFloat64()*0.18, 0.15, 0.72)
			atSkew = clampF(rng.NormFloat64()*0.30, -0.6, 0.6)
			cgSkew = clampF(rng.NormFloat64()*0.30, -0.6, 0.6)
			drift = 0
		}
		if drift <= 0 {
			// Intra-isochore composition drift every ~1 kb.
			drift = 500 + rng.Intn(1000)
			gc = clampF(gc+rng.NormFloat64()*0.015, 0.15, 0.72)
			atSkew = clampF(atSkew+rng.NormFloat64()*0.02, -0.6, 0.6)
			cgSkew = clampF(cgSkew+rng.NormFloat64()*0.02, -0.6, 0.6)
		}
		if len(out) > 200 && rng.Float64() < 0.02 {
			// Local tandem repeat: copy a recent chunk.
			l := 20 + rng.Intn(180)
			if l > len(out) {
				l = len(out)
			}
			start := len(out) - l
			chunk := out[start:]
			if len(out)+len(chunk) > n {
				chunk = chunk[:n-len(out)]
			}
			out = append(out, chunk...)
			segRemain -= len(chunk)
			drift -= len(chunk)
			continue
		}
		var b byte
		if rng.Float64() < gc {
			if rng.Float64() < 0.5+cgSkew {
				b = bases[1] // C
			} else {
				b = bases[2] // G
			}
		} else {
			if rng.Float64() < 0.5+atSkew {
				b = bases[0] // A
			} else {
				b = bases[3] // T
			}
		}
		out = append(out, b)
		segRemain--
		drift--
	}
	return out[:n]
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PlantHomologies copies segments of src into dst at random positions with
// the given per-base mutation rate, planting count homologous regions of the
// given length. It mimics the conserved regions shared between human and
// mouse chromosomes that the paper's genome join finds.
func PlantHomologies(dst, src []byte, count, length int, mutationRate float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	if length > len(src) || length > len(dst) || length <= 0 {
		return
	}
	for i := 0; i < count; i++ {
		from := rng.Intn(len(src) - length + 1)
		to := rng.Intn(len(dst) - length + 1)
		for k := 0; k < length; k++ {
			b := src[from+k]
			if rng.Float64() < mutationRate {
				b = bases[rng.Intn(4)]
			}
			dst[to+k] = b
		}
	}
}

// PlantHomologiesAligned is PlantHomologies with both segment offsets
// rounded down to multiples of align. When subsequence joins sample window
// starts every align positions (the stride substitution of DESIGN.md),
// alignment guarantees that homologous regions contain window pairs the
// strided join can see; real sliding joins (stride 1) do not need it.
func PlantHomologiesAligned(dst, src []byte, count, length int, mutationRate float64, align int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	if length > len(src) || length > len(dst) || length <= 0 || align < 1 {
		return
	}
	for i := 0; i < count; i++ {
		from := rng.Intn(len(src)-length+1) / align * align
		to := rng.Intn(len(dst)-length+1) / align * align
		if from == to && &dst[0] == &src[0] {
			continue // self copy onto itself is a no-op
		}
		for k := 0; k < length; k++ {
			b := src[from+k]
			if rng.Float64() < mutationRate {
				b = bases[rng.Intn(4)]
			}
			dst[to+k] = b
		}
	}
}

// RandomWalk generates a random-walk series of length n (stock-price-like:
// geometric steps around an initial level).
func RandomWalk(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 100.0
	for i := 0; i < n; i++ {
		v *= 1 + rng.NormFloat64()*0.01
		out[i] = v
	}
	return out
}

// NormalizeWindowInvariant rescales a series to zero mean and unit variance,
// the usual preprocessing before subsequence matching of price series.
func NormalizeWindowInvariant(s []float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	var variance float64
	for _, v := range s {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(s))
	sd := math.Sqrt(variance)
	if sd == 0 {
		sd = 1
	}
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = (v - mean) / sd
	}
	return out
}

// ToFloats converts generated vectors to the [][]float64 form the public
// pmjoin API accepts (no copying; rows alias the vectors).
func ToFloats(vs []geom.Vector) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}
