package dataset

import (
	"math"
	"testing"

	"pmjoin/internal/seqdist"
)

func TestRoadIntersectionsDeterministicAndBounded(t *testing.T) {
	a := RoadIntersections(1000, 7)
	b := RoadIntersections(1000, 7)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i][0] != b[i][0] || a[i][1] != b[i][1] {
			t.Fatal("not deterministic")
		}
		for d := 0; d < 2; d++ {
			if a[i][d] < 0 || a[i][d] > 1 {
				t.Fatalf("point %v outside unit square", a[i])
			}
		}
	}
	c := RoadIntersections(1000, 8)
	same := 0
	for i := range a {
		if a[i][0] == c[i][0] {
			same++
		}
	}
	if same > 100 {
		t.Fatal("different seeds produce near-identical data")
	}
}

func TestRoadIntersectionsAreClustered(t *testing.T) {
	// Count occupied cells of a 50x50 grid: clustered data occupies far
	// fewer cells than uniform data of the same cardinality.
	pts := RoadIntersections(5000, 1)
	occupied := map[[2]int]bool{}
	for _, p := range pts {
		occupied[[2]int{int(p[0] * 50), int(p[1] * 50)}] = true
	}
	if len(occupied) > 1800 {
		t.Fatalf("%d of 2500 cells occupied: not clustered", len(occupied))
	}
}

func TestLandsatShapeAndCorrelation(t *testing.T) {
	vecs := Landsat(500, 60, 2)
	if len(vecs) != 500 || len(vecs[0]) != 60 {
		t.Fatal("shape")
	}
	// Neighbouring dimensions must be strongly correlated: the mean squared
	// step between adjacent dims must be far below the overall variance.
	var stepSq, varSum float64
	var mean float64
	n := 0
	for _, v := range vecs {
		for d := 0; d < 59; d++ {
			diff := v[d+1] - v[d]
			stepSq += diff * diff
			n++
		}
		for _, x := range v {
			mean += x
		}
	}
	mean /= float64(500 * 60)
	for _, v := range vecs {
		for _, x := range v {
			varSum += (x - mean) * (x - mean)
		}
	}
	stepSq /= float64(n)
	variance := varSum / float64(500*60)
	if stepSq > variance {
		t.Fatalf("adjacent-dim step %g >= variance %g: not correlated", stepSq, variance)
	}
}

func TestSplitEqualDisjointAndEqual(t *testing.T) {
	vecs := Landsat(1001, 4, 3)
	parts := SplitEqual(vecs, 8, 4)
	if len(parts) != 8 {
		t.Fatal("parts")
	}
	for _, p := range parts {
		if len(p) != 125 {
			t.Fatalf("part size %d", len(p))
		}
	}
	seen := map[*float64]bool{}
	for _, p := range parts {
		for _, v := range p {
			if seen[&v[0]] {
				t.Fatal("vector in two parts")
			}
			seen[&v[0]] = true
		}
	}
}

func TestDNAComposition(t *testing.T) {
	s := DNA(200000, 5)
	if len(s) != 200000 {
		t.Fatal("length")
	}
	counts := map[byte]int{}
	for _, c := range s {
		counts[c]++
	}
	for _, b := range []byte("ACGT") {
		if counts[b] == 0 {
			t.Fatalf("base %c absent", b)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("alphabet = %v", counts)
	}
	gc := float64(counts['C']+counts['G']) / 200000
	if gc < 0.25 || gc > 0.60 {
		t.Fatalf("overall GC = %g implausible", gc)
	}
}

func TestDNAIsCompositionallyHeterogeneous(t *testing.T) {
	// Window frequency vectors from distant regions must usually be far
	// apart in frequency distance — the property that keeps prediction
	// matrices sparse (DESIGN.md).
	s := DNA(400000, 6)
	const w = 500
	far := 0
	total := 0
	for a := 0; a+w < len(s)/2; a += 20000 {
		b := a + len(s)/2
		fa := seqdist.DNA.FreqVector(s[a : a+w])
		fb := seqdist.DNA.FreqVector(s[b : b+w])
		if seqdist.FreqDistance(fa, fb) > 5 {
			far++
		}
		total++
	}
	if far*2 < total {
		t.Fatalf("only %d of %d distant window pairs separated", far, total)
	}
}

func TestDNADeterministic(t *testing.T) {
	a := DNA(5000, 9)
	b := DNA(5000, 9)
	if string(a) != string(b) {
		t.Fatal("not deterministic")
	}
}

func TestPlantHomologiesCreatesSimilarRegions(t *testing.T) {
	src := DNA(50000, 10)
	dst := DNA(50000, 11)
	before := seqdist.FreqDistance(
		seqdist.DNA.FreqVector(src[:500]), seqdist.DNA.FreqVector(dst[:500]))
	_ = before
	PlantHomologiesAligned(dst, src, 20, 2000, 0.004, 32, 12)
	// At least one planted pair of 500-windows must now be within a small
	// edit distance.
	found := false
	for off := 0; off+500 < 50000 && !found; off += 32 {
		for doff := 0; doff+500 < 50000; doff += 32 {
			if d, ok := seqdist.EditDistanceBounded(src[off:off+500], dst[doff:doff+500], 5); ok && d <= 5 {
				found = true
				break
			}
		}
		if off > 8000 {
			break // cap the scan; planting density makes a hit near-certain
		}
	}
	if !found {
		t.Fatal("no homologous window pair found after planting")
	}
}

func TestPlantHomologiesDegenerateInputs(t *testing.T) {
	short := []byte("ACGT")
	PlantHomologies(short, short, 3, 100, 0, 1)           // length > len: no-op
	PlantHomologiesAligned(short, short, 3, 100, 0, 8, 1) // same
	PlantHomologiesAligned(short, short, 3, 2, 0, 0, 1)   // align < 1: no-op
	if string(short) != "ACGT" {
		t.Fatal("degenerate planting mutated input")
	}
}

func TestRandomWalkPositiveAndDeterministic(t *testing.T) {
	a := RandomWalk(1000, 3)
	b := RandomWalk(1000, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] <= 0 {
			t.Fatalf("price %g not positive", a[i])
		}
	}
}

func TestNormalizeWindowInvariant(t *testing.T) {
	s := RandomWalk(500, 4)
	n := NormalizeWindowInvariant(s)
	var mean, variance float64
	for _, v := range n {
		mean += v
	}
	mean /= float64(len(n))
	for _, v := range n {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(n))
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-9 {
		t.Fatalf("mean %g variance %g", mean, variance)
	}
	if NormalizeWindowInvariant(nil) != nil {
		t.Fatal("nil input")
	}
	flat := NormalizeWindowInvariant([]float64{5, 5, 5})
	for _, v := range flat {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
}
