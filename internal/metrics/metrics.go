// Package metrics is the join pipeline's phase-scoped observability layer:
// per-phase wall clock and I/O deltas, per-cluster pinned-set turnover, and
// an optional bounded ring-buffer trace of typed events.
//
// The paper's argument is an I/O-accounting argument — seeks vs. transfers
// per phase (matrix build, clustering, scheduled cluster execution) — so the
// layer attributes every disk and buffer counter delta to the phase that
// charged it. By construction the per-phase deltas of a snapshot sum to the
// run's totals: the collector flushes the delta since the previous boundary
// into the currently open phase at every boundary, so no charge can be
// counted twice or fall between phases (charges outside any marked phase
// land in PhaseOther).
//
// Everything in this package is explicitly OUTSIDE the determinism contract
// (like ExecStats): wall-clock fields vary run to run, and enabling or
// disabling collection must never change a Report, the collected Pairs, or
// a Plan. The package is zero-dependency (stdlib only) and allocation-light:
// a disabled collector is a nil pointer, every method is a nil-receiver
// no-op, and the trace ring is allocated once at its capacity.
//
// Concurrency: a Collector is confined to the coordinating goroutine. That
// is exactly the determinism contract's I/O rule — workers never touch the
// disk or the buffer pool, so every hook (phase boundaries, cluster
// boundaries, evict/seek observers) fires on the coordinator. The one
// cross-goroutine value, the worker pool's queue-depth high-water mark, is
// read through the pool's own lock and recorded at the end of the run.
package metrics

import (
	"fmt"
	"time"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

// Phase identifies one stage of a join run.
type Phase uint8

const (
	// PhaseOther absorbs work outside any marked phase (option validation,
	// result assembly). It exists so phase deltas always sum to the totals.
	PhaseOther Phase = iota
	// PhaseMatrix is prediction-matrix construction (§5).
	PhaseMatrix
	// PhaseCluster is clustering and schedule construction (§7-8).
	PhaseCluster
	// PhaseJoin is the join executor itself — for clustered methods, the
	// scheduled cluster execution (§8).
	PhaseJoin
	// NumPhases sizes per-phase arrays.
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseOther:
		return "other"
	case PhaseMatrix:
		return "matrix"
	case PhaseCluster:
		return "cluster"
	case PhaseJoin:
		return "join"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// EventKind types a trace event.
type EventKind uint8

const (
	// EvPhaseStart / EvPhaseEnd bracket a phase (Event.Phase).
	EvPhaseStart EventKind = iota
	EvPhaseEnd
	// EvClusterStart / EvClusterEnd bracket one scheduled cluster
	// (Event.Cluster is the cluster's creation index).
	EvClusterStart
	EvClusterEnd
	// EvEvict is one frame leaving the buffer pool (Event.Addr).
	EvEvict
	// EvSeek is one random-seek disk access (Event.Addr; Event.Write
	// reports the access direction).
	EvSeek
)

func (k EventKind) String() string {
	switch k {
	case EvPhaseStart:
		return "phase-start"
	case EvPhaseEnd:
		return "phase-end"
	case EvClusterStart:
		return "cluster-start"
	case EvClusterEnd:
		return "cluster-end"
	case EvEvict:
		return "evict"
	case EvSeek:
		return "seek"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one typed trace entry.
type Event struct {
	// Seq is the event's position in the run's full event sequence; gaps
	// never occur, so Seq exposes how much a bounded ring dropped.
	Seq int64
	// Wall is the time since collection started (not deterministic).
	Wall time.Duration
	Kind EventKind
	// Phase is set for phase events.
	Phase Phase
	// Cluster is the cluster's creation index for cluster events, -1
	// otherwise.
	Cluster int
	// Addr is set for Evict and Seek events.
	Addr disk.PageAddr
	// Write marks a write-path seek.
	Write bool
}

func (e Event) String() string {
	switch e.Kind {
	case EvPhaseStart, EvPhaseEnd:
		return fmt.Sprintf("#%d %v %s %s", e.Seq, e.Wall, e.Kind, e.Phase)
	case EvClusterStart, EvClusterEnd:
		return fmt.Sprintf("#%d %v %s c%d", e.Seq, e.Wall, e.Kind, e.Cluster)
	case EvSeek:
		dir := "read"
		if e.Write {
			dir = "write"
		}
		return fmt.Sprintf("#%d %v %s %v (%s)", e.Seq, e.Wall, e.Kind, e.Addr, dir)
	default:
		return fmt.Sprintf("#%d %v %s %v", e.Seq, e.Wall, e.Kind, e.Addr)
	}
}

// PhaseStats is the cost charged while one phase was open.
type PhaseStats struct {
	// Wall is real elapsed time (not simulated; not deterministic).
	Wall time.Duration
	// Disk is the simulated I/O delta charged through the run's disk
	// session while the phase was open.
	Disk disk.Stats
	// Buffer is the hit/miss/eviction delta of the run's buffer pool.
	Buffer buffer.Stats
}

// ClusterStats is the pinned-set turnover of one scheduled cluster.
type ClusterStats struct {
	// Cluster is the cluster's creation index (matches Plan.ClusterIO).
	Cluster int
	// Pinned is the number of pages the cluster pinned.
	Pinned int
	// Fetched is how many of those pins missed the buffer — the cluster's
	// pinned-set turnover, i.e. its actually-measured page reads.
	Fetched int64
	// Reused is how many pins hit pages still resident from earlier
	// clusters (the schedule's realized sharing, Lemma 4).
	Reused int64
	// Prefetched is how many of the cluster's pages its predecessor staged
	// ahead of time (Pool.Prefetch); their hits/misses are pre-charged at
	// stage time and folded into Reused/Fetched here, so Fetched + Reused
	// still partitions Pinned regardless of the prefetch setting.
	Prefetched int64
	// Disk is the cluster's full simulated I/O delta (fetch + any
	// executor-side traffic until the next cluster starts, including reads
	// prefetching the successor's pages).
	Disk disk.Stats
	// Measured is the physical backend read delta over the cluster's window
	// (zero under the simulator). Observational only: with background
	// prefetch readers, a fetch dispatched in one cluster's window can
	// resolve in a later one, smearing its wall cost across boundaries —
	// unlike Disk, Measured per cluster is not deterministic.
	Measured disk.Measured
	// Wall is the cluster's real elapsed time (not deterministic).
	Wall time.Duration
	// BatchCells and BatchRows describe the cluster's batched kernel
	// dispatch (zero when the per-pair path ran): marked cells evaluated in
	// block tasks, and total flat-block rows across both sides.
	BatchCells int
	BatchRows  int
	// BatchBuild is the wall time spent concatenating the cluster's flat
	// blocks (not deterministic).
	BatchBuild time.Duration
}

// Metrics is the snapshot a run produces: per-phase and total deltas,
// per-cluster turnover, worker-queue pressure, and the trace (if enabled).
// All fields are outside the determinism contract.
type Metrics struct {
	// Phases holds one entry per Phase, indexed by the Phase constants.
	// Disk and Buffer deltas across Phases sum exactly to Disk and Buffer.
	Phases [NumPhases]PhaseStats
	// Disk is the run's total simulated I/O (the disk session's account).
	Disk disk.Stats
	// Measured is the run's total physical backend read activity (zero under
	// the simulator; see disk.Measured — outside the determinism contract).
	Measured disk.Measured
	// Buffer is the run's total buffer activity.
	Buffer buffer.Stats
	// Clusters holds per-cluster stats in schedule order (clustered
	// methods only).
	Clusters []ClusterStats
	// QueueHighWater is the worker pool's queue-depth high-water mark
	// (0 when the run was serial).
	QueueHighWater int
	// Timeline is the modeled overlapped-pipeline clock (zero unless the
	// engine attached a disk.Timeline, i.e. for clustered methods).
	Timeline disk.TimelineStats
	// Events is the trace, oldest first (nil unless tracing was enabled).
	Events []Event
	// EventsDropped counts events the bounded ring overwrote.
	EventsDropped int64
	// Wall is the total collection window.
	Wall time.Duration
	// Shards holds the per-shard snapshots of a sharded run, in shard-index
	// order (nil when unsharded). Each shard runs its own collector over its
	// private session and pool; AddShard folds the shard's totals into this
	// snapshot and keeps the originals here.
	Shards []*Metrics
	// FoldedRuns counts the run snapshots accumulated into this one via Fold
	// (0 for a plain per-run snapshot). Per-cluster, trace, and per-shard
	// detail is dropped by Fold — this counter makes the drop visible.
	FoldedRuns int64
}

// AddShard folds one shard's snapshot into m, in shard-index order: the
// shard's disk and buffer totals are charged to m's join phase (keeping the
// phases-sum-to-totals invariant), its cluster stats are appended, and the
// full shard snapshot is kept under Shards. Wall clocks are NOT summed —
// shards run concurrently inside the window m already measures; the
// per-shard walls remain visible on the kept snapshots. A nil m or s no-ops.
func (m *Metrics) AddShard(s *Metrics) {
	if m == nil || s == nil {
		return
	}
	m.Shards = append(m.Shards, s)
	m.Phases[PhaseJoin].Disk = m.Phases[PhaseJoin].Disk.Add(s.Disk)
	m.Phases[PhaseJoin].Buffer = m.Phases[PhaseJoin].Buffer.Add(s.Buffer)
	m.Disk = m.Disk.Add(s.Disk)
	m.Buffer = m.Buffer.Add(s.Buffer)
	m.Measured = m.Measured.Add(s.Measured)
	m.Clusters = append(m.Clusters, s.Clusters...)
	if s.QueueHighWater > m.QueueHighWater {
		m.QueueHighWater = s.QueueHighWater
	}
}

// Fold accumulates another run's snapshot into m, for service-level
// aggregation across requests (the join service folds every finished
// request's snapshot into one cumulative snapshot exposed on /metrics).
// Per-phase wall/disk/buffer deltas and the totals are both summed, so the
// phases-sum-to-totals invariant is preserved by construction: if it held
// for m and for s, it holds for the fold. Wall clocks sum too — the fold is
// cumulative work, not a concurrent window. Bounded by design: per-cluster
// stats, traces, and per-shard snapshots stay on the per-run snapshots and
// are NOT accumulated (a service folding millions of requests must not grow
// without bound); their drop is visible as FoldedRuns versus the per-run
// detail. A nil m or s no-ops.
func (m *Metrics) Fold(s *Metrics) {
	if m == nil || s == nil {
		return
	}
	for p := range m.Phases {
		m.Phases[p].Wall += s.Phases[p].Wall
		m.Phases[p].Disk = m.Phases[p].Disk.Add(s.Phases[p].Disk)
		m.Phases[p].Buffer = m.Phases[p].Buffer.Add(s.Phases[p].Buffer)
	}
	m.Disk = m.Disk.Add(s.Disk)
	m.Buffer = m.Buffer.Add(s.Buffer)
	m.Measured = m.Measured.Add(s.Measured)
	if s.QueueHighWater > m.QueueHighWater {
		m.QueueHighWater = s.QueueHighWater
	}
	m.Timeline.WallSeconds += s.Timeline.WallSeconds
	m.Timeline.SerialSeconds += s.Timeline.SerialSeconds
	m.Timeline.DemandIOSeconds += s.Timeline.DemandIOSeconds
	m.Timeline.OverlapIOSeconds += s.Timeline.OverlapIOSeconds
	m.Timeline.CPUSeconds += s.Timeline.CPUSeconds
	m.Timeline.OverlapReads += s.Timeline.OverlapReads
	m.Timeline.Stages += s.Timeline.Stages
	m.EventsDropped += s.EventsDropped
	m.Wall += s.Wall
	m.FoldedRuns++
}

// Config configures a Collector.
type Config struct {
	// Trace enables the typed event ring.
	Trace bool
	// TraceCapacity bounds the ring; 0 means DefaultTraceCapacity.
	TraceCapacity int
}

// DefaultTraceCapacity is the trace ring size when Config leaves it zero.
const DefaultTraceCapacity = 4096

// Collector accumulates one run's metrics. A nil *Collector is the disabled
// state: every method no-ops, so instrumented code calls unconditionally and
// pays only a nil check when metrics are off.
type Collector struct {
	start    time.Time
	lastWall time.Time

	io   *disk.Session
	pool *buffer.Pool
	// lastDisk / lastBuf are the counter snapshots at the previous phase
	// boundary; the delta since then belongs to the currently open phase.
	lastDisk disk.Stats
	lastBuf  buffer.Stats

	phases [NumPhases]PhaseStats
	stack  []Phase // open phases; empty means PhaseOther

	clusters        []ClusterStats
	cluster         int // creation index of the open cluster, -1 when none
	clusterDisk     disk.Stats
	clusterBuf      buffer.Stats
	clusterMeasured disk.Measured
	clusterStart    time.Time
	// pendingPrefetch holds, per target cluster index, the {pages, reads}
	// staged for it ahead of its ClusterStart; ClusterPinned consumes the
	// entry so the pre-charged turnover lands on the cluster it belongs to.
	pendingPrefetch map[int][2]int64

	queueHighWater int
	timeline       disk.TimelineStats

	trace    bool
	ring     []Event
	ringHead int // next overwrite slot once the ring is full
	dropped  int64
	seq      int64
}

// New creates an enabled collector. Callers that want metrics off keep a nil
// *Collector instead.
func New(cfg Config) *Collector {
	c := &Collector{start: time.Now(), cluster: -1}
	c.lastWall = c.start
	if cfg.Trace {
		cap := cfg.TraceCapacity
		if cap <= 0 {
			cap = DefaultTraceCapacity
		}
		c.trace = true
		c.ring = make([]Event, 0, cap)
	}
	return c
}

// Enabled reports whether the collector is live (non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// Tracing reports whether the event ring is active.
func (c *Collector) Tracing() bool { return c != nil && c.trace }

// Attach points the collector at a run's disk session and buffer pool and,
// when tracing, installs the evict/seek observers. Call it once per
// execution scope, before the scope issues any I/O; deltas recorded before
// Attach have zero Disk/Buffer components (preprocessing does no page I/O).
func (c *Collector) Attach(io *disk.Session, pool *buffer.Pool) {
	if c == nil {
		return
	}
	c.flush() // close out any pre-attach window against the old sources
	c.io, c.pool = io, pool
	if io != nil {
		c.lastDisk = io.Stats()
		if c.trace {
			io.SetOnSeek(func(addr disk.PageAddr, write bool) {
				c.event(Event{Kind: EvSeek, Addr: addr, Write: write, Cluster: -1})
			})
		}
	}
	if pool != nil {
		c.lastBuf = pool.Stats()
		if c.trace {
			pool.SetOnEvict(func(addr disk.PageAddr) {
				c.event(Event{Kind: EvEvict, Addr: addr, Cluster: -1})
			})
		}
	}
}

// cur returns the currently open phase.
func (c *Collector) cur() Phase {
	if len(c.stack) == 0 {
		return PhaseOther
	}
	return c.stack[len(c.stack)-1]
}

// flush attributes the wall/disk/buffer delta since the previous boundary
// to the currently open phase and resets the snapshots. Every boundary
// (PhaseStart, PhaseEnd, Attach, Finish) flushes, which is what makes the
// per-phase deltas sum to the totals.
func (c *Collector) flush() {
	now := time.Now()
	p := c.cur()
	c.phases[p].Wall += now.Sub(c.lastWall)
	c.lastWall = now
	if c.io != nil {
		st := c.io.Stats()
		c.phases[p].Disk = c.phases[p].Disk.Add(st.Sub(c.lastDisk))
		c.lastDisk = st
	}
	if c.pool != nil {
		bs := c.pool.Stats()
		c.phases[p].Buffer = c.phases[p].Buffer.Add(bs.Sub(c.lastBuf))
		c.lastBuf = bs
	}
}

// PhaseStart opens p. Phases nest: work inside an inner phase is attributed
// to the inner phase only (exclusive attribution), and PhaseEnd returns to
// the enclosing one.
func (c *Collector) PhaseStart(p Phase) {
	if c == nil {
		return
	}
	c.flush()
	c.stack = append(c.stack, p)
	c.event(Event{Kind: EvPhaseStart, Phase: p, Cluster: -1})
}

// PhaseEnd closes the innermost open phase.
func (c *Collector) PhaseEnd() {
	if c == nil {
		return
	}
	c.flush()
	if n := len(c.stack); n > 0 {
		c.event(Event{Kind: EvPhaseEnd, Phase: c.stack[n-1], Cluster: -1})
		c.stack = c.stack[:n-1]
	}
}

// ClusterStart opens the per-cluster window for the cluster with the given
// creation index.
func (c *Collector) ClusterStart(index int) {
	if c == nil {
		return
	}
	c.cluster = index
	c.clusterStart = time.Now()
	if c.io != nil {
		c.clusterDisk = c.io.Stats()
		c.clusterMeasured = c.io.Measured()
	}
	if c.pool != nil {
		c.clusterBuf = c.pool.Stats()
	}
	c.event(Event{Kind: EvClusterStart, Cluster: index})
}

// ClusterPinned records, right after the cluster's pin loop, how many pages
// the cluster pinned; the hit/miss delta since ClusterStart splits them into
// reused (resident) and fetched (read) pages.
func (c *Collector) ClusterPinned(pages int) {
	if c == nil || c.cluster < 0 {
		return
	}
	cs := ClusterStats{Cluster: c.cluster, Pinned: pages}
	if c.pool != nil {
		bs := c.pool.Stats().Sub(c.clusterBuf)
		cs.Fetched, cs.Reused = bs.Misses, bs.Hits
	}
	if pending, ok := c.pendingPrefetch[c.cluster]; ok {
		// The predecessor pre-charged these pages: reads count as this
		// cluster's fetches, resident stagings as its reuse.
		cs.Prefetched = pending[0]
		cs.Fetched += pending[1]
		cs.Reused += pending[0] - pending[1]
		delete(c.pendingPrefetch, c.cluster)
	}
	c.clusters = append(c.clusters, cs)
}

// ClusterPrefetched records that the currently open cluster staged pages for
// the cluster with creation index target (reads of them actually hit the
// disk; the rest were already resident). The turnover is credited to target's
// ClusterStats entry when target's own pin loop completes.
func (c *Collector) ClusterPrefetched(target int, pages, reads int64) {
	if c == nil || pages == 0 {
		return
	}
	if c.pendingPrefetch == nil {
		c.pendingPrefetch = make(map[int][2]int64)
	}
	p := c.pendingPrefetch[target]
	p[0] += pages
	p[1] += reads
	c.pendingPrefetch[target] = p
}

// ClusterBatchBuild times one cluster's flat-block construction: build runs
// either way (a nil collector adds nothing beyond the call) and returns the
// cluster's batched cell and row counts, which are recorded on the open
// cluster's entry together with the build's wall time. The clustered
// executor routes its block-build timing through this hook so internal/join
// stays free of wall clocks (the walltime lint rule).
func (c *Collector) ClusterBatchBuild(build func() (cells, rows int)) {
	if c == nil {
		build()
		return
	}
	start := time.Now()
	cells, rows := build()
	d := time.Since(start)
	if n := len(c.clusters); n > 0 && c.cluster >= 0 && c.clusters[n-1].Cluster == c.cluster {
		cs := &c.clusters[n-1]
		cs.BatchCells += cells
		cs.BatchRows += rows
		cs.BatchBuild += d
	}
}

// RecordTimeline stores the run's modeled pipeline clock snapshot.
func (c *Collector) RecordTimeline(ts disk.TimelineStats) {
	if c == nil {
		return
	}
	c.timeline = ts
}

// ClusterEnd closes the per-cluster window, completing the entry's disk
// delta and wall time.
func (c *Collector) ClusterEnd() {
	if c == nil || c.cluster < 0 {
		return
	}
	if n := len(c.clusters); n > 0 && c.clusters[n-1].Cluster == c.cluster {
		cs := &c.clusters[n-1]
		if c.io != nil {
			cs.Disk = c.io.Stats().Sub(c.clusterDisk)
			cs.Measured = c.io.Measured().Sub(c.clusterMeasured)
		}
		cs.Wall = time.Since(c.clusterStart)
	}
	c.event(Event{Kind: EvClusterEnd, Cluster: c.cluster})
	c.cluster = -1
}

// RecordQueueHighWater stores the worker pool's queue-depth high-water mark.
func (c *Collector) RecordQueueHighWater(n int) {
	if c == nil {
		return
	}
	if n > c.queueHighWater {
		c.queueHighWater = n
	}
}

// event appends to the trace ring, overwriting the oldest entry once full.
func (c *Collector) event(ev Event) {
	if c == nil || !c.trace {
		return
	}
	ev.Seq = c.seq
	c.seq++
	ev.Wall = time.Since(c.start)
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, ev)
		return
	}
	c.ring[c.ringHead] = ev
	c.ringHead = (c.ringHead + 1) % len(c.ring)
	c.dropped++
}

// Finish flushes the final window and returns the snapshot. The collector
// must not be used afterwards.
func (c *Collector) Finish() *Metrics {
	if c == nil {
		return nil
	}
	c.flush()
	m := &Metrics{
		Phases:         c.phases,
		Clusters:       c.clusters,
		QueueHighWater: c.queueHighWater,
		Timeline:       c.timeline,
		EventsDropped:  c.dropped,
		Wall:           time.Since(c.start),
	}
	// Totals are the sum of the per-phase deltas; since every charge was
	// flushed into some phase, these equal the session's and pool's final
	// counters (asserted by tests).
	for _, ps := range c.phases {
		m.Disk = m.Disk.Add(ps.Disk)
		m.Buffer = m.Buffer.Add(ps.Buffer)
	}
	// Measured has no per-phase split (background fetches resolve on their
	// own clock); the session's final account is the total.
	if c.io != nil {
		m.Measured = c.io.Measured()
	}
	if c.trace {
		m.Events = make([]Event, 0, len(c.ring))
		m.Events = append(m.Events, c.ring[c.ringHead:]...)
		m.Events = append(m.Events, c.ring[:c.ringHead]...)
	}
	// Detach the observers so a pooled session/pool cannot outlive us.
	if c.io != nil {
		c.io.SetOnSeek(nil)
	}
	if c.pool != nil {
		c.pool.SetOnEvict(nil)
	}
	return m
}
