package metrics

import (
	"testing"

	"pmjoin/internal/buffer"
	"pmjoin/internal/disk"
)

func newRun(t *testing.T, pages, capacity int) (*disk.Disk, disk.FileID, *disk.Session, *buffer.Pool) {
	t.Helper()
	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	for i := 0; i < pages; i++ {
		if _, err := d.AppendPage(f, i); err != nil {
			t.Fatal(err)
		}
	}
	io := d.NewSession()
	pool, err := buffer.NewPool(io, capacity, buffer.LRU)
	if err != nil {
		t.Fatal(err)
	}
	return d, f, io, pool
}

// A nil collector must be a complete no-op on every method.
func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	if c.Enabled() || c.Tracing() {
		t.Fatal("nil collector reports enabled")
	}
	c.Attach(nil, nil)
	c.PhaseStart(PhaseMatrix)
	c.PhaseEnd()
	c.ClusterStart(0)
	c.ClusterPinned(3)
	c.ClusterEnd()
	c.RecordQueueHighWater(7)
	if m := c.Finish(); m != nil {
		t.Fatalf("nil collector Finish = %+v", m)
	}
}

// Per-phase disk and buffer deltas must sum exactly to the run totals, with
// charges outside marked phases attributed to PhaseOther.
func TestPhaseDeltasSumToTotals(t *testing.T) {
	_, f, io, pool := newRun(t, 8, 4)
	c := New(Config{})
	c.Attach(io, pool)

	get := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := pool.Get(disk.PageAddr{File: f, Page: i}); err != nil {
				t.Fatal(err)
			}
		}
	}

	get(0, 2) // outside any phase: PhaseOther
	c.PhaseStart(PhaseMatrix)
	get(2, 4)
	c.PhaseEnd()
	c.PhaseStart(PhaseJoin)
	get(0, 4)                  // hits
	c.PhaseStart(PhaseCluster) // nested
	get(4, 8)                  // evicts
	c.PhaseEnd()
	get(0, 2) // back in join: misses again
	c.PhaseEnd()
	m := c.Finish()

	var sumDisk disk.Stats
	var sumBuf buffer.Stats
	for _, ps := range m.Phases {
		sumDisk = sumDisk.Add(ps.Disk)
		sumBuf = sumBuf.Add(ps.Buffer)
	}
	if sumDisk != io.Stats() {
		t.Fatalf("phase disk sum %+v != session stats %+v", sumDisk, io.Stats())
	}
	if sumBuf != pool.Stats() {
		t.Fatalf("phase buffer sum %+v != pool stats %+v", sumBuf, pool.Stats())
	}
	if m.Disk != io.Stats() || m.Buffer != pool.Stats() {
		t.Fatalf("totals %+v/%+v != %+v/%+v", m.Disk, m.Buffer, io.Stats(), pool.Stats())
	}

	// Exclusive attribution: the nested cluster window owns its 4 misses,
	// not the enclosing join phase.
	if got := m.Phases[PhaseCluster].Buffer.Misses; got != 4 {
		t.Fatalf("cluster-phase misses = %d, want 4", got)
	}
	if got := m.Phases[PhaseMatrix].Buffer.Misses; got != 2 {
		t.Fatalf("matrix-phase misses = %d, want 2", got)
	}
	if got := m.Phases[PhaseOther].Buffer.Misses; got != 2 {
		t.Fatalf("other-phase misses = %d, want 2", got)
	}
	if got := m.Phases[PhaseJoin].Buffer; got.Hits != 4 || got.Misses != 2 {
		t.Fatalf("join-phase buffer = %+v, want 4 hits / 2 misses", got)
	}
}

// Cluster windows must split pins into fetched (misses) and reused (hits).
func TestClusterTurnover(t *testing.T) {
	_, f, io, pool := newRun(t, 8, 6)
	c := New(Config{})
	c.Attach(io, pool)

	pin := func(idx int, pages ...int) {
		c.ClusterStart(idx)
		for _, p := range pages {
			if _, err := pool.GetPinned(disk.PageAddr{File: f, Page: p}); err != nil {
				t.Fatal(err)
			}
		}
		c.ClusterPinned(len(pages))
		pool.UnpinAll()
		c.ClusterEnd()
	}
	pin(3, 0, 1, 2)
	pin(7, 1, 2, 3) // shares pages 1,2 with the previous cluster

	m := c.Finish()
	if len(m.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(m.Clusters))
	}
	c0, c1 := m.Clusters[0], m.Clusters[1]
	if c0.Cluster != 3 || c0.Pinned != 3 || c0.Fetched != 3 || c0.Reused != 0 {
		t.Fatalf("cluster 0 = %+v", c0)
	}
	if c1.Cluster != 7 || c1.Pinned != 3 || c1.Fetched != 1 || c1.Reused != 2 {
		t.Fatalf("cluster 1 = %+v", c1)
	}
	if c1.Disk.Reads != 1 {
		t.Fatalf("cluster 1 disk delta = %+v, want 1 read", c1.Disk)
	}
}

// The trace ring must keep the newest events once full and count the drops,
// with an unbroken Seq numbering.
func TestTraceRingBounds(t *testing.T) {
	_, f, io, pool := newRun(t, 8, 2)
	c := New(Config{Trace: true, TraceCapacity: 4})
	c.Attach(io, pool)
	for i := 0; i < 8; i++ { // 8 misses: 8 seek-or-sequential accesses, 6 evictions
		if _, err := pool.Get(disk.PageAddr{File: f, Page: i}); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Finish()
	if len(m.Events) != 4 {
		t.Fatalf("events = %d, want ring capacity 4", len(m.Events))
	}
	if m.EventsDropped == 0 {
		t.Fatal("expected dropped events")
	}
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Seq != m.Events[i-1].Seq+1 {
			t.Fatalf("non-contiguous ring: %v", m.Events)
		}
	}
	if last := m.Events[len(m.Events)-1]; last.Seq != m.EventsDropped+int64(len(m.Events))-1 {
		t.Fatalf("newest seq %d inconsistent with %d dropped", last.Seq, m.EventsDropped)
	}
}

// Tracing must record evictions and seeks with their addresses, and phase
// brackets in order.
func TestTraceEventContent(t *testing.T) {
	_, f, io, pool := newRun(t, 4, 2)
	c := New(Config{Trace: true})
	c.Attach(io, pool)
	c.PhaseStart(PhaseJoin)
	pool.Get(disk.PageAddr{File: f, Page: 0}) // miss: seek (first access)
	pool.Get(disk.PageAddr{File: f, Page: 1}) // miss: sequential
	pool.Get(disk.PageAddr{File: f, Page: 3}) // miss: gap within readahead -> sequential, evicts page 0
	c.PhaseEnd()
	m := c.Finish()

	var kinds []EventKind
	for _, ev := range m.Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []EventKind{EvPhaseStart, EvSeek, EvEvict, EvPhaseEnd}
	if len(kinds) != len(want) {
		t.Fatalf("events %v, want kinds %v", m.Events, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events %v, want kinds %v", m.Events, want)
		}
	}
	if m.Events[1].Addr != (disk.PageAddr{File: f, Page: 0}) || m.Events[1].Write {
		t.Fatalf("seek event = %+v", m.Events[1])
	}
	if m.Events[2].Addr != (disk.PageAddr{File: f, Page: 0}) {
		t.Fatalf("evict event = %+v", m.Events[2])
	}
	if m.Events[0].Phase != PhaseJoin || m.Events[3].Phase != PhaseJoin {
		t.Fatalf("phase events = %v", m.Events)
	}
	// Observers detach at Finish: further pool traffic must not panic or
	// append.
	pool.Get(disk.PageAddr{File: f, Page: 2})
	if len(m.Events) != 4 {
		t.Fatal("events grew after Finish")
	}
}

// Without Trace, no ring is allocated and Events stays nil.
func TestNoTraceMeansNoEvents(t *testing.T) {
	_, f, io, pool := newRun(t, 4, 2)
	c := New(Config{})
	c.Attach(io, pool)
	pool.Get(disk.PageAddr{File: f, Page: 0})
	m := c.Finish()
	if m.Events != nil || m.EventsDropped != 0 {
		t.Fatalf("events = %v (%d dropped), want none", m.Events, m.EventsDropped)
	}
}

func TestQueueHighWaterKeepsMax(t *testing.T) {
	c := New(Config{})
	c.RecordQueueHighWater(3)
	c.RecordQueueHighWater(9)
	c.RecordQueueHighWater(5)
	if m := c.Finish(); m.QueueHighWater != 9 {
		t.Fatalf("high water = %d, want 9", m.QueueHighWater)
	}
}

func TestPhaseAndEventStrings(t *testing.T) {
	for p := PhaseOther; p < NumPhases; p++ {
		if p.String() == "" {
			t.Fatalf("empty name for phase %d", p)
		}
	}
	if Phase(99).String() == "" || EventKind(99).String() == "" {
		t.Fatal("unknown enum names empty")
	}
	for _, ev := range []Event{
		{Kind: EvPhaseStart, Phase: PhaseJoin},
		{Kind: EvClusterEnd, Cluster: 4},
		{Kind: EvSeek, Write: true},
		{Kind: EvEvict},
	} {
		if ev.String() == "" {
			t.Fatalf("empty string for %+v", ev)
		}
	}
}

// Fold must preserve the phases-sum-to-totals invariant, accumulate counters,
// and keep the unbounded per-run detail (clusters, traces, shards) out of the
// cumulative snapshot.
func TestFoldPreservesInvariant(t *testing.T) {
	snap := func(lo, hi int) *Metrics {
		_, f, io, pool := newRun(t, 8, 4)
		c := New(Config{Trace: true})
		c.Attach(io, pool)
		c.PhaseStart(PhaseJoin)
		c.ClusterStart(0)
		for i := lo; i < hi; i++ {
			if _, err := pool.Get(disk.PageAddr{File: f, Page: i}); err != nil {
				t.Fatal(err)
			}
		}
		c.ClusterEnd()
		c.PhaseEnd()
		c.RecordQueueHighWater(hi)
		return c.Finish()
	}

	a, b := snap(0, 3), snap(0, 6)
	var folded Metrics
	folded.Fold(a)
	folded.Fold(b)

	var sumDisk disk.Stats
	var sumBuf buffer.Stats
	for _, ps := range folded.Phases {
		sumDisk = sumDisk.Add(ps.Disk)
		sumBuf = sumBuf.Add(ps.Buffer)
	}
	if sumDisk != folded.Disk || sumBuf != folded.Buffer {
		t.Fatalf("fold broke phases-sum-to-totals: phases %+v/%+v totals %+v/%+v",
			sumDisk, sumBuf, folded.Disk, folded.Buffer)
	}
	if want := a.Disk.Add(b.Disk); folded.Disk != want {
		t.Fatalf("folded disk %+v, want %+v", folded.Disk, want)
	}
	if want := a.Buffer.Add(b.Buffer); folded.Buffer != want {
		t.Fatalf("folded buffer %+v, want %+v", folded.Buffer, want)
	}
	if folded.FoldedRuns != 2 {
		t.Fatalf("FoldedRuns = %d, want 2", folded.FoldedRuns)
	}
	if folded.QueueHighWater != 6 {
		t.Fatalf("QueueHighWater = %d, want max 6", folded.QueueHighWater)
	}
	if len(folded.Clusters) != 0 || len(folded.Events) != 0 || len(folded.Shards) != 0 {
		t.Fatalf("fold accumulated unbounded detail: %d clusters, %d events, %d shards",
			len(folded.Clusters), len(folded.Events), len(folded.Shards))
	}
	// Folding must not disturb the source snapshots.
	if len(a.Events) == 0 || a.FoldedRuns != 0 {
		t.Fatalf("source snapshot mutated: %+v", a)
	}
	// nil source / nil receiver are no-ops, not panics.
	folded.Fold(nil)
	if folded.FoldedRuns != 2 {
		t.Fatal("nil fold counted")
	}
	var nilm *Metrics
	nilm.Fold(a)
}
