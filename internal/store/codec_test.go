package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"pmjoin/internal/geom"
	"pmjoin/internal/join"
)

// sampleVectorPage exercises negative IDs and every special float class the
// format promises to round-trip bit-exactly.
func sampleVectorPage() *join.VectorPage {
	return &join.VectorPage{
		IDs: []int{0, -7, 1 << 40},
		Vecs: []geom.Vector{
			{1.5, -2.25, 0},
			{math.NaN(), math.Inf(1), math.Inf(-1)},
			{math.Copysign(0, -1), 5e-324, math.MaxFloat64},
		},
	}
}

func sampleSeriesPage() *join.SeriesPage {
	return &join.SeriesPage{
		IDs:     []int{3, 4},
		Starts:  []int{0, -128},
		Windows: [][]float64{{0.5, 1.5, 2.5}, {}},
	}
}

func sampleStringPage() *join.StringPage {
	return &join.StringPage{
		IDs:     []int{9, 10},
		Starts:  []int{2, 11},
		Windows: [][]byte{[]byte("abacus"), {}},
		Freqs:   [][]int{{3, 0, -1}, {}},
	}
}

func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// roundTrip encodes payload and decodes it back, failing the test on error.
func roundTrip(t *testing.T, payload any) any {
	t.Helper()
	rec, err := EncodeRecord(payload)
	if err != nil {
		t.Fatalf("EncodeRecord(%T): %v", payload, err)
	}
	got, err := DecodeRecord(rec)
	if err != nil {
		t.Fatalf("DecodeRecord(%T record): %v", payload, err)
	}
	return got
}

func TestCodecRoundTripVectorPage(t *testing.T) {
	want := sampleVectorPage()
	got, ok := roundTrip(t, want).(*join.VectorPage)
	if !ok {
		t.Fatalf("decoded to %T, want *join.VectorPage", got)
	}
	if !eqInts(got.IDs, want.IDs) {
		t.Errorf("IDs = %v, want %v", got.IDs, want.IDs)
	}
	if len(got.Vecs) != len(want.Vecs) {
		t.Fatalf("len(Vecs) = %d, want %d", len(got.Vecs), len(want.Vecs))
	}
	for i := range want.Vecs {
		if !eqFloats(got.Vecs[i], want.Vecs[i]) {
			t.Errorf("Vecs[%d] = %v, want bit-identical %v", i, got.Vecs[i], want.Vecs[i])
		}
	}
}

func TestCodecRoundTripSeriesPage(t *testing.T) {
	want := sampleSeriesPage()
	got, ok := roundTrip(t, want).(*join.SeriesPage)
	if !ok {
		t.Fatalf("decoded to %T, want *join.SeriesPage", got)
	}
	if !eqInts(got.IDs, want.IDs) || !eqInts(got.Starts, want.Starts) {
		t.Errorf("IDs/Starts = %v/%v, want %v/%v", got.IDs, got.Starts, want.IDs, want.Starts)
	}
	if len(got.Windows) != len(want.Windows) {
		t.Fatalf("len(Windows) = %d, want %d", len(got.Windows), len(want.Windows))
	}
	for i := range want.Windows {
		if !eqFloats(got.Windows[i], want.Windows[i]) {
			t.Errorf("Windows[%d] = %v, want %v", i, got.Windows[i], want.Windows[i])
		}
	}
}

func TestCodecRoundTripStringPage(t *testing.T) {
	want := sampleStringPage()
	got, ok := roundTrip(t, want).(*join.StringPage)
	if !ok {
		t.Fatalf("decoded to %T, want *join.StringPage", got)
	}
	if !eqInts(got.IDs, want.IDs) || !eqInts(got.Starts, want.Starts) {
		t.Errorf("IDs/Starts = %v/%v, want %v/%v", got.IDs, got.Starts, want.IDs, want.Starts)
	}
	for i := range want.Windows {
		if string(got.Windows[i]) != string(want.Windows[i]) {
			t.Errorf("Windows[%d] = %q, want %q", i, got.Windows[i], want.Windows[i])
		}
		if !eqInts(got.Freqs[i], want.Freqs[i]) {
			t.Errorf("Freqs[%d] = %v, want %v", i, got.Freqs[i], want.Freqs[i])
		}
	}
}

func TestCodecRoundTripRawPayloads(t *testing.T) {
	if got := roundTrip(t, RawVectors{{1, 2}, {}, {-3.5}}).(RawVectors); len(got) != 3 || !eqFloats(got[0], []float64{1, 2}) || !eqFloats(got[2], []float64{-3.5}) {
		t.Errorf("RawVectors round-trip = %v", got)
	}
	if got := roundTrip(t, RawSeries{0.25, math.NaN(), -1}).(RawSeries); !eqFloats(got, []float64{0.25, math.NaN(), -1}) {
		t.Errorf("RawSeries round-trip = %v", got)
	}
	if got := roundTrip(t, RawString("hello\x00world")).(RawString); string(got) != "hello\x00world" {
		t.Errorf("RawString round-trip = %q", got)
	}
}

func TestCodecRoundTripEmptyPages(t *testing.T) {
	for _, payload := range []any{
		&join.VectorPage{}, &join.SeriesPage{}, &join.StringPage{},
		RawVectors{}, RawSeries{}, RawString{},
	} {
		roundTrip(t, payload)
	}
}

func TestEncodeUnsupportedPayload(t *testing.T) {
	for _, payload := range []any{nil, 42, "scratch", []int{1}, join.VectorPage{}} {
		if _, err := EncodeRecord(payload); !errors.Is(err, ErrUnsupportedPayload) {
			t.Errorf("EncodeRecord(%T) err = %v, want ErrUnsupportedPayload", payload, err)
		}
	}
}

func TestEncodeMismatchedPageSlices(t *testing.T) {
	cases := []any{
		&join.VectorPage{IDs: []int{1, 2}, Vecs: []geom.Vector{{1}}},
		&join.SeriesPage{IDs: []int{1}, Starts: []int{0, 1}, Windows: [][]float64{{1}}},
		&join.StringPage{IDs: []int{1}, Starts: []int{0}, Windows: [][]byte{[]byte("a")}, Freqs: nil},
	}
	for _, payload := range cases {
		if _, err := EncodeRecord(payload); err == nil {
			t.Errorf("EncodeRecord(%T with mismatched slices) succeeded, want error", payload)
		}
	}
}

// corrupt returns a copy of rec with the byte at i xor'd by mask.
func corrupt(rec []byte, i int, mask byte) []byte {
	out := append([]byte(nil), rec...)
	out[i] ^= mask
	return out
}

func TestDecodeRejectsCorruptRecords(t *testing.T) {
	rec, err := EncodeRecord(sampleVectorPage())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"truncated header":  rec[:headerSize-1],
		"bad magic":         corrupt(rec, 0, 0xff),
		"bad version":       corrupt(rec, 4, 0xff),
		"bad kind":          corrupt(rec, 6, 0xff),
		"length mismatch":   corrupt(rec, 8, 0x01),
		"crc mismatch":      corrupt(rec, headerSize, 0x01),
		"truncated payload": rec[:len(rec)-1],
		"trailing bytes":    append(append([]byte(nil), rec...), 0),
	}
	for name, bad := range cases {
		if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("%s: err = %v, want ErrCorruptRecord", name, err)
		}
	}
}

// TestDecodeRejectsAllocationBomb feeds a structurally valid record whose
// element count claims far more rows than the payload holds: the decoder must
// reject it before allocating, not OOM.
func TestDecodeRejectsAllocationBomb(t *testing.T) {
	body := binary.LittleEndian.AppendUint32(nil, 0xffffffff)
	rec := make([]byte, headerSize+len(body))
	copy(rec, magic[:])
	binary.LittleEndian.PutUint16(rec[4:6], formatVersion)
	binary.LittleEndian.PutUint16(rec[6:8], uint16(kindVectorPage))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(body))
	copy(rec[headerSize:], body)
	if _, err := DecodeRecord(rec); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
}

// FuzzPageCodecRoundTrip is the codec's safety net: DecodeRecord must never
// panic on arbitrary input, and any input it accepts must re-encode to the
// identical bytes (the format is canonical: decode ∘ encode = id on valid
// records).
func FuzzPageCodecRoundTrip(f *testing.F) {
	for _, payload := range []any{
		sampleVectorPage(), sampleSeriesPage(), sampleStringPage(),
		RawVectors{{1, 2, 3}}, RawSeries{4, 5}, RawString("seed"),
		&join.VectorPage{}, &join.StringPage{},
	} {
		rec, err := EncodeRecord(payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		f.Add(corrupt(rec, len(rec)/2, 0x80))
	}
	f.Add([]byte{})
	f.Add([]byte("PMJP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptRecord) {
				t.Fatalf("decode error is not ErrCorruptRecord: %v", err)
			}
			return
		}
		rec, err := EncodeRecord(payload)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if string(rec) != string(data) {
			t.Fatalf("re-encode is not canonical:\n in: %x\nout: %x", data, rec)
		}
	})
}
