//go:build linux

package store

import (
	"os"
	"syscall"
)

// mapping is a read-only mmap view of a store file's first len bytes.
type mapping []byte

// mapFile maps the first size bytes of f read-only.
func mapFile(f *os.File, size int64) (mapping, error) {
	if size <= 0 {
		return nil, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return mapping(b), nil
}

// unmap releases a view.
func unmap(m mapping) error {
	if m == nil {
		return nil
	}
	return syscall.Munmap([]byte(m))
}

// adviseSequential hints the kernel that the view will be read front to back,
// widening readahead for the cold sweep.
func adviseSequential(m mapping) {
	if m != nil {
		_ = syscall.Madvise([]byte(m), syscall.MADV_SEQUENTIAL)
	}
}

// adviseSequentialFD is the fd-level counterpart (posix_fadvise SEQUENTIAL),
// covering the pread fallback path.
func adviseSequentialFD(f *os.File) {
	fadvise(f, 2 /* POSIX_FADV_SEQUENTIAL */)
}

// dropMapped discards the view's resident pages (madvise DONTNEED) so the
// next touch faults them back in from disk — the mapped half of DropCaches.
func dropMapped(m mapping) {
	if m != nil {
		_ = syscall.Madvise([]byte(m), syscall.MADV_DONTNEED)
	}
}

// dropFileCache asks the kernel to evict the file's page-cache pages
// (posix_fadvise DONTNEED) — the fd half of DropCaches. Best-effort: pages
// still referenced by a live mapping survive, which is why dropMapped runs
// first.
func dropFileCache(f *os.File) {
	fadvise(f, 4 /* POSIX_FADV_DONTNEED */)
}

// fadvise issues posix_fadvise(fd, 0, 0, advice) over the whole file.
func fadvise(f *os.File, advice int) {
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64, f.Fd(), 0, 0, uintptr(advice), 0, 0)
}
