// Package store is the file-backed page store: the physical disk.Backend
// behind a simulated Disk. Page payloads are encoded into a versioned binary
// wire format (one record per page: fixed 16-byte header + payload + CRC),
// appended to one real file per disk.FileID, and served back via mmap with a
// pread fallback — with *measured* per-read wall latencies, which is the
// point: every other layer of this repository charges modeled seconds, this
// one reports what the hardware actually did.
//
// The wire format is also the dataset save/load container (`pmjoin -save` /
// `-data`): the same header frames raw-data records (RawVectors, RawSeries,
// RawString), so one codec, one CRC, and one fuzz target cover both uses.
//
// store is one of the sanctioned wall-clock packages (see the walltime rule
// in LINTING.md): measured timing is its job, and nothing it measures ever
// feeds a Report — only disk.Measured / ExecStats.MeasuredIOWall.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"pmjoin/internal/geom"
	"pmjoin/internal/join"
)

// Record layout (all integers little-endian):
//
//	offset size field
//	0      4    magic "PMJP"
//	4      2    format version (currently 1)
//	6      2    payload kind
//	8      4    payload length in bytes
//	12     4    CRC-32 (IEEE) of the payload bytes
//	16     n    payload (kind-specific, see encodePayload)
const (
	headerSize    = 16
	formatVersion = 1
)

var magic = [4]byte{'P', 'M', 'J', 'P'}

// pageKind tags a record's payload encoding.
type pageKind uint16

const (
	kindVectorPage pageKind = 1 + iota
	kindSeriesPage
	kindStringPage
	kindRawVectors
	kindRawSeries
	kindRawString
)

// Raw dataset payloads: the save/load container types. They are distinct
// named types so DecodeRecord's result is self-describing.
type (
	// RawVectors is an unindexed vector dataset (rows of coordinates).
	RawVectors [][]float64
	// RawSeries is an unindexed time series (samples).
	RawSeries []float64
	// RawString is an unindexed symbol sequence.
	RawString []byte
)

// ErrUnsupportedPayload reports a payload type the wire format has no
// encoding for — executor-internal scratch payloads. The store skips such
// pages (they stay memory-only); callers that require encodability (the
// dataset saver) surface it.
var ErrUnsupportedPayload = errors.New("store: unsupported payload type")

// ErrCorruptRecord reports a record that failed structural validation:
// wrong magic, unknown version or kind, truncated payload, CRC mismatch, or
// payload bytes that do not parse back. Decoding never panics on corrupt
// input (fuzzed by FuzzPageCodecRoundTrip).
var ErrCorruptRecord = errors.New("store: corrupt record")

// EncodeRecord encodes one payload into a complete wire record
// (header + payload). It returns ErrUnsupportedPayload for types outside
// the format.
func EncodeRecord(payload any) ([]byte, error) {
	kind, body, err := encodePayload(payload)
	if err != nil {
		return nil, err
	}
	if len(body) > math.MaxUint32 {
		return nil, fmt.Errorf("store: payload of %d bytes exceeds the record size limit", len(body))
	}
	rec := make([]byte, headerSize+len(body))
	copy(rec[0:4], magic[:])
	binary.LittleEndian.PutUint16(rec[4:6], formatVersion)
	binary.LittleEndian.PutUint16(rec[6:8], uint16(kind))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[12:16], crc32.ChecksumIEEE(body))
	copy(rec[headerSize:], body)
	return rec, nil
}

// parseHeader validates a record header and returns its kind and payload
// length. b must hold at least headerSize bytes.
func parseHeader(b []byte) (kind pageKind, payloadLen uint32, crc uint32, err error) {
	if len(b) < headerSize {
		return 0, 0, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorruptRecord, len(b))
	}
	if [4]byte(b[0:4]) != magic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorruptRecord, b[0:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != formatVersion {
		return 0, 0, 0, fmt.Errorf("%w: unknown format version %d", ErrCorruptRecord, v)
	}
	kind = pageKind(binary.LittleEndian.Uint16(b[6:8]))
	if kind < kindVectorPage || kind > kindRawString {
		return 0, 0, 0, fmt.Errorf("%w: unknown payload kind %d", ErrCorruptRecord, kind)
	}
	return kind, binary.LittleEndian.Uint32(b[8:12]), binary.LittleEndian.Uint32(b[12:16]), nil
}

// DecodeRecord decodes one complete wire record (as produced by
// EncodeRecord) back into its payload. Corrupt or truncated input returns
// ErrCorruptRecord — never a panic.
func DecodeRecord(rec []byte) (any, error) {
	kind, plen, crc, err := parseHeader(rec)
	if err != nil {
		return nil, err
	}
	if uint64(len(rec)) != headerSize+uint64(plen) {
		return nil, fmt.Errorf("%w: record is %d bytes, header says %d", ErrCorruptRecord, len(rec), headerSize+plen)
	}
	body := rec[headerSize:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	return decodePayload(kind, body)
}

// encoder appends the fixed-width primitives of the format.
type encoder struct{ b []byte }

func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// i64 encodes a Go int as two's-complement u64, so negative IDs round-trip.
func (e *encoder) i64(v int) { e.u64(uint64(int64(v))) }

// f64 encodes a float through its exact bit pattern: NaNs, signed zeros and
// subnormals round-trip bit-identically, which is what keeps comparison
// results backend-independent.
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) floats(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// decoder consumes the primitives with saturating error state: after the
// first short read every accessor returns zero, and the caller checks err
// once at the end. Count fields are validated against the bytes that could
// possibly back them before any allocation, so corrupt input cannot force
// huge allocations.
type decoder struct {
	b   []byte
	off int
	bad bool
}

func (d *decoder) fail() { d.bad = true }

func (d *decoder) u32() uint32 {
	if d.bad || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.bad || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int     { return int(int64(d.u64())) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 element count and rejects it unless the remaining bytes
// can hold n elements of at least minBytes each.
func (d *decoder) count(minBytes int) int {
	n := int(d.u32())
	if d.bad {
		return 0
	}
	if n < 0 || (minBytes > 0 && n > (len(d.b)-d.off)/minBytes) {
		d.fail()
		return 0
	}
	return n
}

func (d *decoder) floats() []float64 {
	n := d.count(8)
	if d.bad {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) bytes() []byte {
	n := d.count(1)
	if d.bad || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+n])
	d.off += n
	return out
}

// done reports whether the decoder consumed the payload exactly.
func (d *decoder) done() bool { return !d.bad && d.off == len(d.b) }

// encodePayload serializes one payload, returning its kind tag and body.
func encodePayload(payload any) (pageKind, []byte, error) {
	var e encoder
	switch p := payload.(type) {
	case *join.VectorPage:
		if len(p.Vecs) != len(p.IDs) {
			return 0, nil, fmt.Errorf("store: vector page with %d ids but %d vectors", len(p.IDs), len(p.Vecs))
		}
		// u32 n, then per row: i64 id, u32 dim, dim×f64.
		e.u32(uint32(len(p.IDs)))
		for i, id := range p.IDs {
			e.i64(id)
			e.floats(p.Vecs[i])
		}
		return kindVectorPage, e.b, nil
	case *join.SeriesPage:
		if len(p.Starts) != len(p.IDs) || len(p.Windows) != len(p.IDs) {
			return 0, nil, fmt.Errorf("store: series page with mismatched row slices")
		}
		// u32 n, then per row: i64 id, i64 start, u32 len, len×f64.
		e.u32(uint32(len(p.IDs)))
		for i, id := range p.IDs {
			e.i64(id)
			e.i64(p.Starts[i])
			e.floats(p.Windows[i])
		}
		return kindSeriesPage, e.b, nil
	case *join.StringPage:
		if len(p.Starts) != len(p.IDs) || len(p.Windows) != len(p.IDs) || len(p.Freqs) != len(p.IDs) {
			return 0, nil, fmt.Errorf("store: string page with mismatched row slices")
		}
		// u32 n, then per row: i64 id, i64 start, u32 wlen + bytes,
		// u32 flen, flen×i64 frequencies.
		e.u32(uint32(len(p.IDs)))
		for i, id := range p.IDs {
			e.i64(id)
			e.i64(p.Starts[i])
			w := p.Windows[i]
			e.u32(uint32(len(w)))
			e.b = append(e.b, w...)
			fr := p.Freqs[i]
			e.u32(uint32(len(fr)))
			for _, f := range fr {
				e.i64(f)
			}
		}
		return kindStringPage, e.b, nil
	case RawVectors:
		e.u32(uint32(len(p)))
		for _, row := range p {
			e.floats(row)
		}
		return kindRawVectors, e.b, nil
	case RawSeries:
		e.floats(p)
		return kindRawSeries, e.b, nil
	case RawString:
		e.u32(uint32(len(p)))
		e.b = append(e.b, p...)
		return kindRawString, e.b, nil
	default:
		return 0, nil, fmt.Errorf("%w: %T", ErrUnsupportedPayload, payload)
	}
}

// decodePayload parses a payload body of the given kind.
func decodePayload(kind pageKind, body []byte) (any, error) {
	d := &decoder{b: body}
	var out any
	switch kind {
	case kindVectorPage:
		n := d.count(12) // id + dim count per row, minimum
		p := &join.VectorPage{IDs: make([]int, 0, n), Vecs: make([]geom.Vector, 0, n)}
		for i := 0; i < n && !d.bad; i++ {
			p.IDs = append(p.IDs, d.i64())
			p.Vecs = append(p.Vecs, geom.Vector(d.floats()))
		}
		out = p
	case kindSeriesPage:
		n := d.count(20) // id + start + len count per row, minimum
		p := &join.SeriesPage{IDs: make([]int, 0, n), Starts: make([]int, 0, n), Windows: make([][]float64, 0, n)}
		for i := 0; i < n && !d.bad; i++ {
			p.IDs = append(p.IDs, d.i64())
			p.Starts = append(p.Starts, d.i64())
			p.Windows = append(p.Windows, d.floats())
		}
		out = p
	case kindStringPage:
		n := d.count(24) // id + start + two len counts per row, minimum
		p := &join.StringPage{IDs: make([]int, 0, n), Starts: make([]int, 0, n), Windows: make([][]byte, 0, n), Freqs: make([][]int, 0, n)}
		for i := 0; i < n && !d.bad; i++ {
			p.IDs = append(p.IDs, d.i64())
			p.Starts = append(p.Starts, d.i64())
			p.Windows = append(p.Windows, d.bytes())
			fn := d.count(8)
			fr := make([]int, 0, fn)
			for k := 0; k < fn && !d.bad; k++ {
				fr = append(fr, d.i64())
			}
			p.Freqs = append(p.Freqs, fr)
		}
		out = p
	case kindRawVectors:
		n := d.count(4) // a length word per row, minimum
		rows := make(RawVectors, 0, n)
		for i := 0; i < n && !d.bad; i++ {
			rows = append(rows, d.floats())
		}
		out = rows
	case kindRawSeries:
		out = RawSeries(d.floats())
	case kindRawString:
		out = RawString(d.bytes())
	default:
		return nil, fmt.Errorf("%w: unknown payload kind %d", ErrCorruptRecord, kind)
	}
	if !d.done() {
		return nil, fmt.Errorf("%w: payload does not parse (kind %d)", ErrCorruptRecord, kind)
	}
	return out, nil
}
