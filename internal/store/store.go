package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pmjoin/internal/disk"
)

// Store is a file-backed page store implementing disk.Backend: one real file
// per disk.FileID under a directory, one wire record per page, reads served
// from an mmap view (pread when mapping is unavailable) with measured wall
// latencies.
//
// Write model: records are append-only. Overwriting a page appends the new
// record and repoints the page's offset — the old record's bytes leak inside
// the file, which is fine for the short-lived scratch files runtime
// executors write and keeps Put a single positioned write. Payload types the
// wire format cannot encode are silently skipped (the page stays
// memory-only and Fetch reports disk.ErrNotInBackend), so executor-internal
// scratch payloads never break a run.
//
// Concurrency: Put and Fetch are safe for concurrent use — the coordinator
// appends while background prefetch readers fetch. Mappings are
// remap-lagging: when a file has grown past the current view the file is
// remapped at its new size and the old view is kept alive until Close, so a
// concurrent reader's slice can never be unmapped under it.
type Store struct {
	dir   string
	mu    sync.Mutex
	files map[disk.FileID]*storeFile
}

// storeFile is one FileID's backing file.
type storeFile struct {
	mu      sync.RWMutex
	f       *os.File
	size    int64
	offsets []int64 // record offset per page index; -1 = absent
	cur     mapping // newest mmap view (nil when unmapped / unsupported)
	maps    []mapping
}

// Open creates (or reopens) a store rooted at dir. Page files are named
// f<NNNNNN>.pmj; the directory is created if needed. Reopening an existing
// directory starts from empty state — the store is a mirror of a live Disk,
// not a database; the dataset save/load container (SaveData/LoadData) is the
// durable format.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, files: make(map[disk.FileID]*storeFile)}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// file returns the storeFile for id, creating its backing file when create
// is set.
func (st *Store) file(id disk.FileID, create bool) (*storeFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sf, ok := st.files[id]; ok {
		return sf, nil
	}
	if !create {
		return nil, nil
	}
	path := filepath.Join(st.dir, fmt.Sprintf("f%06d.pmj", int(id)))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	adviseSequentialFD(f)
	sf := &storeFile{f: f}
	st.files[id] = sf
	return sf, nil
}

// Put implements disk.Backend: it encodes the payload and appends the record
// to the page's file, repointing the page offset. Unencodable payloads are
// skipped (nil error), leaving the page memory-only.
func (st *Store) Put(addr disk.PageAddr, payload any) error {
	rec, err := EncodeRecord(payload)
	if errors.Is(err, ErrUnsupportedPayload) {
		return nil
	}
	if err != nil {
		return err
	}
	if addr.Page < 0 {
		return fmt.Errorf("store: negative page index %v", addr)
	}
	sf, err := st.file(addr.File, true)
	if err != nil {
		return err
	}
	sf.mu.Lock()
	defer sf.mu.Unlock()
	off := sf.size
	if _, err := sf.f.WriteAt(rec, off); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sf.size += int64(len(rec))
	for len(sf.offsets) <= addr.Page {
		sf.offsets = append(sf.offsets, -1)
	}
	sf.offsets[addr.Page] = off
	return nil
}

// Fetch implements disk.Backend: it locates the page's record, reads it
// through the mmap view (pread fallback), validates and decodes it, and
// returns the payload together with the measured wall seconds the whole
// physical read took (read + CRC + decode — the real cost of serving the
// page). Pages never Put return disk.ErrNotInBackend.
func (st *Store) Fetch(addr disk.PageAddr) (any, float64, error) {
	start := time.Now()
	sf, err := st.file(addr.File, false)
	if err != nil {
		return nil, 0, err
	}
	if sf == nil {
		return nil, 0, disk.ErrNotInBackend
	}
	sf.mu.RLock()
	off := int64(-1)
	if addr.Page >= 0 && addr.Page < len(sf.offsets) {
		off = sf.offsets[addr.Page]
	}
	size := sf.size
	sf.mu.RUnlock()
	if off < 0 {
		return nil, 0, disk.ErrNotInBackend
	}
	hdr, err := sf.bytesAt(off, headerSize, size)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %v: %w", addr, err)
	}
	_, plen, _, err := parseHeader(hdr)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %v: %w", addr, err)
	}
	rec, err := sf.bytesAt(off, headerSize+int64(plen), size)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %v: %w", addr, err)
	}
	payload, err := DecodeRecord(rec)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %v: %w", addr, err)
	}
	return payload, time.Since(start).Seconds(), nil
}

// bytesAt returns n bytes at off: a zero-copy slice of the mmap view when it
// covers the range (remapping first if the file grew past the view), else a
// pread into a fresh buffer. size is the file length snapshot the caller
// read under the lock.
func (sf *storeFile) bytesAt(off, n, size int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > size {
		return nil, fmt.Errorf("%w: record extends past end of file", ErrCorruptRecord)
	}
	sf.mu.RLock()
	b := sf.cur.slice(off, n)
	sf.mu.RUnlock()
	if b != nil {
		return b, nil
	}
	sf.remap()
	sf.mu.RLock()
	b = sf.cur.slice(off, n)
	sf.mu.RUnlock()
	if b != nil {
		return b, nil
	}
	// pread fallback: mapping unavailable on this platform or it failed.
	buf := make([]byte, n)
	if _, err := sf.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// remap maps the file at its current size, keeping the previous view alive
// (see Store's concurrency note). A mapping failure is not an error: readers
// fall back to pread.
func (sf *storeFile) remap() {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if sf.size == 0 || int64(len(sf.cur)) >= sf.size {
		return
	}
	m, err := mapFile(sf.f, sf.size)
	if err != nil || m == nil {
		return
	}
	adviseSequential(m)
	sf.maps = append(sf.maps, m)
	sf.cur = m
}

// slice returns the view's [off, off+n) window, or nil when the view does
// not cover it.
func (m mapping) slice(off, n int64) []byte {
	if m == nil || off < 0 || n < 0 || off+n > int64(len(m)) {
		return nil
	}
	return m[off : off+n]
}

// DropCaches makes the next reads as cold as the host allows: every file is
// synced, its mapped pages are discarded (madvise DONTNEED) and the page
// cache is advised to drop it (fadvise DONTNEED). Best-effort — a host or
// filesystem that ignores the advice simply serves warmer "cold" runs; the
// storage benchmark labels the modes either way.
func (st *Store) DropCaches() error {
	st.mu.Lock()
	ids := make([]disk.FileID, 0, len(st.files))
	for id := range st.files {
		ids = append(ids, id)
	}
	files := make([]*storeFile, len(ids))
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		files[i] = st.files[id]
	}
	st.mu.Unlock()
	var first error
	for _, sf := range files {
		sf.mu.Lock()
		if err := sf.f.Sync(); err != nil && first == nil {
			first = fmt.Errorf("store: %w", err)
		}
		for _, m := range sf.maps {
			dropMapped(m)
		}
		dropFileCache(sf.f)
		sf.mu.Unlock()
	}
	return first
}

// Close unmaps every view and closes every file. The store must not be used
// afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, sf := range st.files {
		sf.mu.Lock()
		for _, m := range sf.maps {
			if err := unmap(m); err != nil && first == nil {
				first = err
			}
		}
		sf.maps, sf.cur = nil, nil
		if err := sf.f.Close(); err != nil && first == nil {
			first = err
		}
		sf.mu.Unlock()
	}
	st.files = make(map[disk.FileID]*storeFile)
	return first
}

// Pages returns how many page slots file id has (absent slots included);
// 0 for files never Put. Intended for tests.
func (st *Store) Pages(id disk.FileID) int {
	sf, err := st.file(id, false)
	if err != nil || sf == nil {
		return 0
	}
	sf.mu.RLock()
	defer sf.mu.RUnlock()
	return len(sf.offsets)
}

// SaveData writes one raw-dataset payload (RawVectors, RawSeries or
// RawString) as a single wire record at path — the `pmjoin -save` container.
func SaveData(path string, payload any) error {
	switch payload.(type) {
	case RawVectors, RawSeries, RawString:
	default:
		return fmt.Errorf("%w: %T is not a raw dataset payload", ErrUnsupportedPayload, payload)
	}
	rec, err := EncodeRecord(payload)
	if err != nil {
		return err
	}
	return os.WriteFile(path, rec, 0o644)
}

// LoadData reads a SaveData container back. The result is RawVectors,
// RawSeries or RawString; page-kind records are rejected.
func LoadData(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := DecodeRecord(b)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	switch payload.(type) {
	case RawVectors, RawSeries, RawString:
		return payload, nil
	default:
		return nil, fmt.Errorf("store: %s holds a page record, not a dataset", path)
	}
}
