package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
)

func vecPage(base int) *join.VectorPage {
	return &join.VectorPage{
		IDs:  []int{base, base + 1},
		Vecs: []geom.Vector{{float64(base), 1}, {float64(base) + 0.5, -2}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	addrs := []disk.PageAddr{
		{File: 0, Page: 0}, {File: 0, Page: 1}, {File: 3, Page: 5},
	}
	for i, addr := range addrs {
		if err := st.Put(addr, vecPage(10*i)); err != nil {
			t.Fatalf("Put(%v): %v", addr, err)
		}
	}
	for i, addr := range addrs {
		payload, secs, err := st.Fetch(addr)
		if err != nil {
			t.Fatalf("Fetch(%v): %v", addr, err)
		}
		if secs < 0 {
			t.Errorf("Fetch(%v) measured %v seconds", addr, secs)
		}
		pg, ok := payload.(*join.VectorPage)
		if !ok {
			t.Fatalf("Fetch(%v) = %T, want *join.VectorPage", addr, payload)
		}
		if want := vecPage(10 * i); !eqInts(pg.IDs, want.IDs) || !eqFloats(pg.Vecs[0], want.Vecs[0]) {
			t.Errorf("Fetch(%v) = %+v, want %+v", addr, pg, want)
		}
	}
	if got := st.Pages(3); got != 6 {
		t.Errorf("Pages(3) = %d, want 6 (absent slots included)", got)
	}
}

func TestStoreAbsentPages(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(disk.PageAddr{File: 1, Page: 2}, vecPage(0)); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []disk.PageAddr{
		{File: 9, Page: 0},  // unknown file
		{File: 1, Page: 7},  // past the end
		{File: 1, Page: 0},  // gap slot never Put
		{File: 1, Page: -1}, // nonsense index
	} {
		if _, _, err := st.Fetch(addr); !errors.Is(err, disk.ErrNotInBackend) {
			t.Errorf("Fetch(%v) err = %v, want ErrNotInBackend", addr, err)
		}
	}
}

func TestStoreOverwrite(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	addr := disk.PageAddr{File: 0, Page: 0}
	if err := st.Put(addr, vecPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(addr, vecPage(42)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := st.Fetch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := payload.(*join.VectorPage); got.IDs[0] != 42 {
		t.Errorf("after overwrite, IDs[0] = %d, want 42", got.IDs[0])
	}
}

// TestStoreSkipsUnencodable pins the scratch-page contract: a Put of an
// executor-internal payload succeeds as a no-op and the page reads back as
// not-in-backend (memory fallback at the Session layer).
func TestStoreSkipsUnencodable(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	addr := disk.PageAddr{File: 0, Page: 0}
	if err := st.Put(addr, struct{ x int }{1}); err != nil {
		t.Fatalf("Put(scratch payload): %v", err)
	}
	if err := st.Put(addr, nil); err != nil {
		t.Fatalf("Put(nil payload): %v", err)
	}
	if _, _, err := st.Fetch(addr); !errors.Is(err, disk.ErrNotInBackend) {
		t.Errorf("Fetch err = %v, want ErrNotInBackend", err)
	}
}

func TestStoreDropCaches(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	addr := disk.PageAddr{File: 0, Page: 0}
	if err := st.Put(addr, vecPage(7)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Fetch(addr); err != nil { // warm the mapping first
		t.Fatal(err)
	}
	if err := st.DropCaches(); err != nil {
		t.Fatalf("DropCaches: %v", err)
	}
	payload, _, err := st.Fetch(addr)
	if err != nil {
		t.Fatalf("Fetch after DropCaches: %v", err)
	}
	if got := payload.(*join.VectorPage); got.IDs[0] != 7 {
		t.Errorf("IDs[0] = %d, want 7", got.IDs[0])
	}
}

// TestStoreConcurrentPutFetch races appends against reads across files so the
// remap-lagging mapping logic runs under -race.
func TestStoreConcurrentPutFetch(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const pages = 64
	if err := st.Put(disk.PageAddr{File: 0, Page: 0}, vecPage(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for p := 1; p < pages; p++ {
			if err := st.Put(disk.PageAddr{File: 0, Page: p}, vecPage(p)); err != nil {
				t.Errorf("Put page %d: %v", p, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 4*pages; i++ {
			addr := disk.PageAddr{File: 0, Page: i % pages}
			_, _, err := st.Fetch(addr)
			if err != nil && !errors.Is(err, disk.ErrNotInBackend) {
				t.Errorf("Fetch(%v): %v", addr, err)
				return
			}
		}
	}()
	wg.Wait()
	for p := 0; p < pages; p++ {
		if _, _, err := st.Fetch(disk.PageAddr{File: 0, Page: p}); err != nil {
			t.Fatalf("final Fetch page %d: %v", p, err)
		}
	}
}

// TestSessionThroughStore is the seam integration test: a Disk mirrored into
// a Store serves a Session's reads from real files, counts them in Measured,
// and keeps the logical Stats identical to a simulator session.
func TestSessionThroughStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	d := disk.New(disk.DefaultModel())
	f := d.CreateFile()
	var addrs []disk.PageAddr
	for p := 0; p < 4; p++ {
		addr, err := d.AppendPage(f, vecPage(p))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	// Seed pages materialized before the mirror existed, then attach it.
	if err := d.EachPage(st.Put); err != nil {
		t.Fatal(err)
	}
	d.SetMirror(st)
	if addr, err := d.AppendPage(f, vecPage(4)); err != nil {
		t.Fatal(err)
	} else {
		addrs = append(addrs, addr)
	}

	sim := d.NewSession()
	phys := d.NewSessionOn(st)
	for _, addr := range addrs {
		simPg, err := sim.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		physPg, err := phys.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		simV := simPg.Payload.(*join.VectorPage)
		physV := physPg.Payload.(*join.VectorPage)
		if !eqInts(simV.IDs, physV.IDs) {
			t.Errorf("Read(%v): backend IDs %v != memory IDs %v", addr, physV.IDs, simV.IDs)
		}
	}
	if sim.Stats() != phys.Stats() {
		t.Errorf("logical stats diverge: sim %+v, phys %+v", sim.Stats(), phys.Stats())
	}
	m := phys.Measured()
	if m.Reads != int64(len(addrs)) {
		t.Errorf("Measured.Reads = %d, want %d", m.Reads, len(addrs))
	}
	if sm := sim.Measured(); sm != (disk.Measured{}) {
		t.Errorf("simulator session Measured = %+v, want zero", sm)
	}
}

func TestSaveLoadData(t *testing.T) {
	dir := t.TempDir()
	cases := []any{
		RawVectors{{1, 2}, {3, 4}},
		RawSeries{0.5, 1.5},
		RawString("acgt"),
	}
	for i, payload := range cases {
		path := fmt.Sprintf("%s/data%d.pmj", dir, i)
		if err := SaveData(path, payload); err != nil {
			t.Fatalf("SaveData(%T): %v", payload, err)
		}
		got, err := LoadData(path)
		if err != nil {
			t.Fatalf("LoadData(%T): %v", payload, err)
		}
		if fmt.Sprintf("%v", got) != fmt.Sprintf("%v", payload) {
			t.Errorf("LoadData = %v, want %v", got, payload)
		}
	}
	if err := SaveData(dir+"/bad.pmj", vecPage(0)); !errors.Is(err, ErrUnsupportedPayload) {
		t.Errorf("SaveData(page payload) err = %v, want ErrUnsupportedPayload", err)
	}
	// A page record on disk is not a dataset.
	rec, err := EncodeRecord(vecPage(0))
	if err != nil {
		t.Fatal(err)
	}
	pagePath := dir + "/page.pmj"
	if err := os.WriteFile(pagePath, rec, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadData(pagePath); err == nil {
		t.Error("LoadData(page record) succeeded, want error")
	}
}
