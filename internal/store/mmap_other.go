//go:build !linux

package store

import "os"

// Non-Linux hosts serve every read through the pread fallback: mapFile
// reports "no mapping available" and the advice hooks are no-ops. The store
// works identically, just without zero-copy views or cache-drop support.

// mapping is a read-only view of a store file; always nil on this platform.
type mapping []byte

func mapFile(*os.File, int64) (mapping, error) { return nil, nil }

func unmap(mapping) error { return nil }

func adviseSequential(mapping) {}

func adviseSequentialFD(*os.File) {}

func dropMapped(mapping) {}

func dropFileCache(*os.File) {}
