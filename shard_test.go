package pmjoin

import (
	"reflect"
	"runtime"
	"sort"
	"testing"

	"pmjoin/internal/dataset"
)

// TestShardDeterminism is the sharding half of the determinism contract:
// for every clustered method, the merged Report, Pairs and Plan of a sharded
// run are bit-identical across shard worker counts {1, GOMAXPROCS} for a
// fixed shard count, and a 1-shard run is bit-identical to the unsharded
// executor (the single shard re-derives the identical global schedule over
// its own cold session and private pool). Run under -race, this also
// exercises the coordinator's concurrent shard execution against the shared
// comparison pool.
func TestShardDeterminism(t *testing.T) {
	type workload struct {
		name  string
		build func(t *testing.T) (*System, *Dataset, *Dataset)
		opt   Options
	}
	loads := []workload{
		{
			// Small buffer relative to the matrix so clustering yields many
			// clusters: enough schedule to cut, with real sharing at the
			// boundaries the planner severs.
			name: "vector-tight-buffer",
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(400, 2, 31), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(300, 2, 32), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 0.05, BufferPages: 12, CollectPairs: true, Parallelism: 4},
		},
		{
			// Self join: row and column pages share a file, so the planner's
			// page sets must dedup exactly like the executor's.
			name: "series-self",
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 1024})
				ds, err := sys.AddSeries("walk", dataset.RandomWalk(2500, 33), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				return sys, ds, ds
			},
			opt: Options{Epsilon: 8.0, BufferPages: 16, CollectPairs: true},
		},
	}
	methods := []Method{SC, RandomSC, CC}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}

	for _, wl := range loads {
		t.Run(wl.name, func(t *testing.T) {
			sys, da, db := wl.build(t)
			for _, m := range methods {
				opt := wl.opt
				opt.Method = m
				base, err := sys.Join(da, db, opt)
				if err != nil {
					t.Fatalf("%v unsharded: %v", m, err)
				}
				for _, shards := range []int{1, 3} {
					var ref *Result
					for _, w := range workerCounts {
						o := opt
						o.Sharding = ShardingOptions{Shards: shards, Workers: w}
						res, err := sys.Join(da, db, o)
						if err != nil {
							t.Fatalf("%v shards=%d workers=%d: %v", m, shards, w, err)
						}
						if res.Exec.Shards == 0 {
							t.Fatalf("%v shards=%d: Exec.Shards not reported", m, shards)
						}
						if ref == nil {
							ref = res
							continue
						}
						if !reflect.DeepEqual(res.Report, ref.Report) {
							t.Errorf("%v shards=%d: Report differs between workers %d and %d:\n%+v\n%+v",
								m, shards, workerCounts[0], w, ref.Report, res.Report)
						}
						if !reflect.DeepEqual(res.Pairs, ref.Pairs) || res.Truncated != ref.Truncated {
							t.Errorf("%v shards=%d: Pairs differ between workers %d and %d",
								m, shards, workerCounts[0], w)
						}
					}
					if shards == 1 {
						if !reflect.DeepEqual(ref.Report, base.Report) {
							t.Errorf("%v: 1-shard Report differs from unsharded:\n%+v\n%+v",
								m, base.Report, ref.Report)
						}
						if !reflect.DeepEqual(ref.Pairs, base.Pairs) || ref.Truncated != base.Truncated {
							t.Errorf("%v: 1-shard Pairs differ from unsharded", m)
						}
					}
				}
			}

			// Plan: repeated sharded Explains are bit-identical, the sharding
			// block is populated, and clearing it recovers the unsharded plan
			// field for field — sharding only adds to the Plan.
			po := wl.opt
			po.Method = SC
			plain, err := sys.Explain(da, db, po)
			if err != nil {
				t.Fatal(err)
			}
			po.Sharding = ShardingOptions{Shards: 3}
			p1, err := sys.Explain(da, db, po)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := sys.Explain(da, db, po)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Errorf("sharded Plan not deterministic:\n%+v\n%+v", p1, p2)
			}
			if len(p1.Shards) == 0 {
				t.Fatal("sharded Explain reported no shards")
			}
			var shardReads, shardClusters int64
			for _, sh := range p1.Shards {
				shardReads += sh.PredictedReads
				shardClusters += int64(sh.Clusters)
			}
			if shardClusters != int64(p1.Clusters) {
				t.Errorf("shards cover %d clusters, plan has %d", shardClusters, p1.Clusters)
			}
			// The planner dedups pages a cluster touches through both join
			// sides (a self-join shares the file), while ClusteredPageReads
			// counts per-side pages, so the deduped baseline is only bounded
			// above by the plan's clustered read estimate.
			if got := shardReads - p1.CutLostPages; got > p1.ClusteredPageReads-p1.ScheduleSavings {
				t.Errorf("sharded baseline %d > clustered reads %d - savings %d",
					got, p1.ClusteredPageReads, p1.ScheduleSavings)
			}
			p1.Shards, p1.CutLostPages, p1.CutPenaltySeconds = nil, 0, 0
			if !reflect.DeepEqual(p1, plain) {
				t.Errorf("sharding changed the unsharded Plan fields:\n%+v\n%+v", plain, p1)
			}
		})
	}
}

// TestShardedCC pins the sharded CC path's method label and cluster count:
// the merged report must still read "CC" and cover every cluster once.
func TestShardedCC(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(300, 2, 34), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(200, 2, 35), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Method: CC, Epsilon: 0.05, BufferPages: 12}
	base, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Sharding = ShardingOptions{Shards: 2}
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Method != "CC" {
		t.Errorf("sharded CC method = %q", res.Report.Method)
	}
	if res.Report.Clusters != base.Report.Clusters {
		t.Errorf("sharded CC clusters = %d, unsharded %d", res.Report.Clusters, base.Report.Clusters)
	}
	if res.Report.Results != base.Report.Results {
		t.Errorf("sharded CC results = %d, unsharded %d", res.Report.Results, base.Report.Results)
	}
}

// TestShardMetricsMerge checks the observational side: a sharded run with
// metrics on carries one snapshot per shard, per-shard cluster stats
// concatenated in shard-index order, and totals that include the shards'
// disk work — without perturbing Report or Pairs (the determinism contract).
func TestShardMetricsMerge(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(300, 2, 36), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(200, 2, 37), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Method: SC, Epsilon: 0.05, BufferPages: 12, CollectPairs: true,
		Sharding: ShardingOptions{Shards: 2}}
	plainRes, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Metrics = true
	res, err := sys.Join(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report, plainRes.Report) || !reflect.DeepEqual(res.Pairs, plainRes.Pairs) {
		t.Fatal("enabling metrics changed a sharded run's Report or Pairs")
	}
	mm := res.Metrics
	if mm == nil {
		t.Fatal("no metrics snapshot")
	}
	if len(mm.Shards) != res.Exec.Shards {
		t.Fatalf("%d shard snapshots, Exec.Shards=%d", len(mm.Shards), res.Exec.Shards)
	}
	var clusters int
	var reads int64
	for _, sn := range mm.Shards {
		clusters += len(sn.Clusters)
		reads += sn.Disk.Reads
	}
	if clusters != len(mm.Clusters) {
		t.Errorf("merged cluster stats %d != per-shard sum %d", len(mm.Clusters), clusters)
	}
	if mm.Disk.Reads < reads {
		t.Errorf("merged disk reads %d < shard sum %d", mm.Disk.Reads, reads)
	}
	if reads != res.Report.PageReads {
		t.Errorf("shard disk reads %d != report reads %d", reads, res.Report.PageReads)
	}
}

// TestPairsCapBoundaryShardedVsUnsharded pins the MaxPairs cap semantics at
// its boundary, sharded against unsharded: with the cap exactly at the total
// pair count both modes collect the same pair set and report Truncated=false;
// one below, both truncate to exactly the cap with Truncated=true; one above,
// neither truncates. Pair ORDER differs between the modes by design — each
// shard greedily re-schedules its own cluster subset, so the sharded emission
// order is the shard-index concatenation of per-shard schedules, not the
// global schedule — but within each mode a capped run returns an exact prefix
// of that mode's full emission order.
func TestPairsCapBoundaryShardedVsUnsharded(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(400, 2, 41), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(300, 2, 42), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Method: SC, Epsilon: 0.06, BufferPages: 12, CollectPairs: true}
	sharded := func(o Options) Options {
		o.Sharding = ShardingOptions{Shards: 3, Workers: 2}
		return o
	}

	// Learn the total pair count with an effectively unbounded cap.
	probe := base
	probe.MaxPairs = 1 << 30
	full, err := sys.Join(da, db, probe)
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Pairs)
	if full.Truncated || total < 3 {
		t.Fatalf("probe: %d pairs, truncated=%v", total, full.Truncated)
	}
	fullShard, err := sys.Join(da, db, sharded(probe))
	if err != nil {
		t.Fatal(err)
	}
	if fullShard.Truncated || len(fullShard.Pairs) != total {
		t.Fatalf("sharded probe: %d pairs, truncated=%v, want %d",
			len(fullShard.Pairs), fullShard.Truncated, total)
	}
	if !reflect.DeepEqual(sortedPairs(full.Pairs), sortedPairs(fullShard.Pairs)) {
		t.Fatal("sharded and unsharded full runs found different pair sets")
	}

	for _, tc := range []struct {
		name      string
		cap       int
		wantLen   int
		wantTrunc bool
	}{
		{"exactly-at-cap", total, total, false},
		{"one-under-cap", total - 1, total - 1, true},
		{"one-over-cap", total + 1, total, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			opt.MaxPairs = tc.cap
			flat, err := sys.Join(da, db, opt)
			if err != nil {
				t.Fatal(err)
			}
			shrd, err := sys.Join(da, db, sharded(opt))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range []*Result{flat, shrd} {
				if len(r.Pairs) != tc.wantLen || r.Truncated != tc.wantTrunc {
					t.Fatalf("pairs=%d truncated=%v, want %d/%v",
						len(r.Pairs), r.Truncated, tc.wantLen, tc.wantTrunc)
				}
			}
			if !reflect.DeepEqual(flat.Pairs, full.Pairs[:tc.wantLen]) {
				t.Fatalf("unsharded capped pairs are not a prefix of its full emission order at cap %d", tc.cap)
			}
			if !reflect.DeepEqual(shrd.Pairs, fullShard.Pairs[:tc.wantLen]) {
				t.Fatalf("sharded capped pairs are not a prefix of its full emission order at cap %d", tc.cap)
			}
			if tc.wantLen == total {
				if !reflect.DeepEqual(sortedPairs(flat.Pairs), sortedPairs(shrd.Pairs)) {
					t.Fatalf("full collection pair sets diverge at cap %d", tc.cap)
				}
			}
		})
	}
}

// sortedPairs returns a copy of pairs in lexicographic order, for set
// comparison across emission orders.
func sortedPairs(pairs [][2]int) [][2]int {
	out := append([][2]int(nil), pairs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
