package pmjoin

import (
	"fmt"
	"math"

	"pmjoin/internal/bfrj"
	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/ego"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
	"pmjoin/internal/mrsindex"
	"pmjoin/internal/pbsm"
	"pmjoin/internal/predmat"
)

// Method selects the join algorithm.
type Method int

const (
	// NLJ is block nested loop join (the no-information baseline, §2.1).
	NLJ Method = iota
	// PMNLJ restricts NLJ to the marked prediction-matrix entries (§6).
	PMNLJ
	// RandomSC is square clustering with clusters processed in random
	// order (isolates the scheduling optimization, §9.1).
	RandomSC
	// SC is square clustering with greedy sharing-graph scheduling — the
	// paper's primary technique (§7.1, §8).
	SC
	// CC is cost-based clustering with greedy scheduling, the approximate
	// I/O lower bound (§7.2).
	CC
	// EGO is the epsilon grid ordering join baseline (§9).
	EGO
	// BFRJ is the breadth-first R-tree join baseline (§9).
	BFRJ
	// PBSM is the Partition Based Spatial-Merge join of Patel & DeWitt,
	// surveyed in §2.1 — an extension baseline beyond the paper's
	// evaluation, available for vector data only.
	PBSM
)

func (m Method) String() string {
	switch m {
	case NLJ:
		return "NLJ"
	case PMNLJ:
		return "pm-NLJ"
	case RandomSC:
		return "random-SC"
	case SC:
		return "SC"
	case CC:
		return "CC"
	case EGO:
		return "EGO"
	case BFRJ:
		return "BFRJ"
	case PBSM:
		return "PBSM"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ReplacementPolicy selects the buffer replacement policy.
type ReplacementPolicy int

const (
	// LRU is the paper's default policy.
	LRU ReplacementPolicy = iota
	// FIFO is provided for the replacement ablation.
	FIFO
)

// Options configures one join execution.
type Options struct {
	Method Method
	// Epsilon is the distance threshold: an Lp distance for vector and
	// series data, a maximum edit distance for string data.
	Epsilon float64
	// BufferPages is B, the buffer size in pages (minimum 4).
	BufferPages int
	// Policy is the buffer replacement policy (default LRU).
	Policy ReplacementPolicy
	// Seed drives the random choices of RandomSC and CC (deterministic).
	Seed int64
	// CollectPairs stores up to MaxPairs result pairs in the Result.
	CollectPairs bool
	// MaxPairs caps collected pairs (default 100000; 0 means the default).
	MaxPairs int
	// FilterDepth bounds the prediction-matrix filter iterations
	// (default 5, the paper's k; -1 disables filtering).
	FilterDepth int
	// ClusterRowFraction is the SC buffer fraction devoted to rows
	// (default 0.5, the paper's square shape; ablation knob).
	ClusterRowFraction float64
	// HistogramBins is CC's density-histogram resolution (default 100).
	HistogramBins int
}

// Result reports the outcome and simulated cost of a join.
type Result struct {
	// Report is the cost breakdown (simulated I/O seconds, modeled CPU and
	// preprocessing seconds, page reads, seeks, comparisons, result count).
	Report join.Report
	// Matrix statistics (zero for NLJ, EGO, BFRJ).
	MarkedEntries int
	MatrixDensity float64
	// MatrixSeconds is the modeled cost of prediction-matrix construction,
	// reported separately: the paper folds it into index preprocessing and
	// excludes it from Figure 10's join costs.
	MatrixSeconds float64
	// Pairs holds collected result pairs when Options.CollectPairs is set.
	Pairs [][2]int
	// Truncated reports that more pairs matched than were collected.
	Truncated bool
}

// Count returns the number of result pairs found.
func (r *Result) Count() int64 { return r.Report.Results }

// TotalSeconds returns the total simulated join cost.
func (r *Result) TotalSeconds() float64 { return r.Report.Total() }

// Join executes the join of a and b under opt. For a self join pass the
// same dataset twice: each unordered result pair is then reported once, and
// for sequence data trivially overlapping window pairs (start distance less
// than the window length) are excluded.
func (s *System) Join(a, b *Dataset, opt Options) (*Result, error) {
	if a.sys != s || b.sys != s {
		return nil, fmt.Errorf("pmjoin: datasets belong to a different system")
	}
	if a.kind != b.kind {
		return nil, fmt.Errorf("pmjoin: cannot join %v with %v data", a.kind, b.kind)
	}
	if opt.BufferPages < 4 {
		return nil, fmt.Errorf("pmjoin: buffer of %d pages too small (minimum 4)", opt.BufferPages)
	}
	if opt.Epsilon < 0 {
		return nil, fmt.Errorf("pmjoin: negative epsilon %g", opt.Epsilon)
	}
	if err := s.checkCompatible(a, b); err != nil {
		return nil, err
	}

	res := &Result{}
	eng := &join.Engine{
		Disk:       s.d,
		BufferSize: opt.BufferPages,
		Policy:     buffer.Policy(opt.Policy),
	}
	if opt.CollectPairs {
		maxPairs := opt.MaxPairs
		if maxPairs == 0 {
			maxPairs = 100000
		}
		eng.OnPair = func(i, j int) {
			if len(res.Pairs) < maxPairs {
				res.Pairs = append(res.Pairs, [2]int{i, j})
			} else {
				res.Truncated = true
			}
		}
	}

	self := a == b || a.ds.File == b.ds.File
	joiner := s.joiner(a, opt.Epsilon, self)

	var rep *join.Report
	var err error
	switch opt.Method {
	case NLJ:
		rep, err = eng.NLJ(&a.ds, &b.ds, joiner)
	case PMNLJ:
		var m *predmat.Matrix
		m, err = s.buildMatrix(a, b, opt, res)
		if err == nil {
			rep, err = eng.PMNLJ(&a.ds, &b.ds, m, joiner)
		}
	case RandomSC, SC, CC:
		var m *predmat.Matrix
		m, err = s.buildMatrix(a, b, opt, res)
		if err != nil {
			break
		}
		var clusters []*cluster.Cluster
		var pre float64
		if opt.Method == CC {
			clusters, err = cluster.Cost(m, opt.BufferPages, cluster.CostOptions{
				HistogramBins: opt.HistogramBins,
				Seed:          opt.Seed,
				IO: cluster.IOModel{
					SeekTime:     s.model.SeekSeconds,
					TransferTime: s.model.TransferSeconds,
				},
			})
			pre = join.ModelCCPreprocess(m.Marked())
		} else {
			clusters, err = cluster.SquareOpts(m, opt.BufferPages, cluster.SquareOptions{
				RowFraction: opt.ClusterRowFraction,
			})
			pre = join.ModelSCPreprocess(m.Marked())
		}
		if err != nil {
			break
		}
		order := join.OrderGreedySharing
		if opt.Method == RandomSC {
			order = join.OrderRandom
		}
		rep, err = eng.Clustered(&a.ds, &b.ds, m, clusters, joiner, join.ClusteredOptions{
			Order:             order,
			Seed:              opt.Seed,
			PreprocessSeconds: pre,
		})
		if rep != nil && opt.Method == CC {
			rep.Method = "CC"
		}
	case EGO:
		rep, err = ego.Run(eng, &a.ds, &b.ds, s.egoAdapter(a, opt.Epsilon, self), ego.Options{SelfJoin: self})
	case BFRJ:
		rep, err = bfrj.Run(eng, &a.ds, &b.ds, joiner, bfrj.Options{
			Eps:      s.matrixEpsilon(a, opt.Epsilon),
			Pred:     s.predictor(a),
			SelfJoin: self,
		})
	case PBSM:
		if a.kind != KindVector {
			err = fmt.Errorf("pmjoin: PBSM supports vector data only, got %v", a.kind)
			break
		}
		rep, err = pbsm.Run(eng, &a.ds, &b.ds, joiner, pbsm.Options{
			Eps:      opt.Epsilon,
			SelfJoin: self,
		})
	default:
		err = fmt.Errorf("pmjoin: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	res.Report = *rep
	return res, nil
}

func (s *System) checkCompatible(a, b *Dataset) error {
	switch a.kind {
	case KindVector:
		if a.dim != b.dim {
			return fmt.Errorf("pmjoin: dimension mismatch %d vs %d", a.dim, b.dim)
		}
		if a.norm != b.norm {
			return fmt.Errorf("pmjoin: norm mismatch %v vs %v", a.norm, b.norm)
		}
	case KindSeries, KindString:
		if a.window != b.window {
			return fmt.Errorf("pmjoin: window mismatch %d vs %d", a.window, b.window)
		}
	}
	return nil
}

// joiner builds the object joiner for the data kind.
func (s *System) joiner(a *Dataset, eps float64, self bool) join.ObjectJoiner {
	switch a.kind {
	case KindVector:
		return join.VectorJoiner{Norm: a.norm, Eps: eps, Self: self}
	case KindSeries:
		return join.SeriesJoiner{Eps: eps, Self: self, ExcludeOverlap: a.window}
	default:
		return join.StringJoiner{MaxEdit: int(eps), Self: self, ExcludeOverlap: a.window}
	}
}

// predictor builds the lower-bounding predictor of Table 1.
func (s *System) predictor(a *Dataset) predmat.Predictor {
	switch a.kind {
	case KindVector:
		return predmat.NormPredictor{Norm: a.norm}
	case KindSeries:
		return predmat.NormPredictor{Norm: geom.L2, Scale: a.scale}
	default:
		return mrsindex.Predictor{}
	}
}

// matrixEpsilon returns the threshold in the predictor's space (identical
// to the join epsilon for every kind; kept as a seam for future predictors).
func (s *System) matrixEpsilon(a *Dataset, eps float64) float64 { return eps }

func (s *System) buildMatrix(a, b *Dataset, opt Options, res *Result) (*predmat.Matrix, error) {
	depth := opt.FilterDepth
	switch {
	case depth == 0:
		depth = predmat.DefaultFilterDepth
	case depth < 0:
		depth = 0
	}
	key := matrixKey{fileA: a.ds.File, fileB: b.ds.File, eps: opt.Epsilon, depth: depth}
	if e, ok := s.matrixCache[key]; ok {
		res.MarkedEntries = e.m.Marked()
		res.MatrixDensity = e.m.Density()
		res.MatrixSeconds = e.seconds
		return e.m, nil
	}
	var stats predmat.BuildStats
	m, err := predmat.Build(a.ds.Root, b.ds.Root, a.ds.Pages, b.ds.Pages,
		s.matrixEpsilon(a, opt.Epsilon), s.predictor(a),
		predmat.BuildOptions{FilterDepth: depth, Stats: &stats})
	if err != nil {
		return nil, err
	}
	seconds := float64(stats.SweepEvents+stats.PairTests) * join.MatrixEntryCost
	s.matrixCache[key] = &matrixEntry{m: m, seconds: seconds}
	res.MarkedEntries = m.Marked()
	res.MatrixDensity = m.Density()
	res.MatrixSeconds = seconds
	return m, nil
}

// egoAdapter builds the EGO grid adapter for the data kind.
func (s *System) egoAdapter(a *Dataset, eps float64, self bool) ego.Adapter {
	switch a.kind {
	case KindVector:
		cell := eps
		if cell <= 0 {
			cell = math.SmallestNonzeroFloat64
		}
		return &vectorEGO{norm: a.norm, eps: eps, cell: cell, self: self}
	case KindSeries:
		cell := eps / a.scale
		if cell <= 0 {
			cell = math.SmallestNonzeroFloat64
		}
		return &seriesEGO{eps: eps, cell: cell, self: self, window: a.window, features: a.features}
	default:
		cell := eps
		if cell < 1 {
			cell = 1
		}
		return &stringEGO{maxEdit: int(eps), cell: int(cell), self: self, window: a.window}
	}
}
