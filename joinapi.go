package pmjoin

import (
	"context"
	"fmt"
	"math"
	"time"

	"pmjoin/internal/bfrj"
	"pmjoin/internal/buffer"
	"pmjoin/internal/cluster"
	"pmjoin/internal/disk"
	"pmjoin/internal/ego"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
	"pmjoin/internal/kernel"
	"pmjoin/internal/metrics"
	"pmjoin/internal/mrsindex"
	"pmjoin/internal/pbsm"
	"pmjoin/internal/predmat"
	"pmjoin/internal/shard"
)

// storageReaderWorkers is the width of the dedicated background reader pool
// a file-backed join runs its prefetch fetches on. Reader tasks are plain
// blocking preads, so a small fixed width suffices to overlap staged reads
// with compute without oversubscribing the host.
const storageReaderWorkers = 4

// ExecStats reports how a join actually executed on the host machine. Unlike
// every other Result field, these are real wall-clock measurements: they vary
// run to run and are excluded from the determinism contract (Report, Pairs
// and Plan are bit-for-bit independent of Parallelism; ExecStats is not).
type ExecStats struct {
	// Workers is the number of pool workers the join ran with (1 = inline).
	Workers int
	// MatrixWall is the wall time of prediction-matrix construction
	// (zero when the matrix was cached or the method builds none).
	MatrixWall time.Duration
	// PreprocessWall is the wall time of clustering and scheduling.
	PreprocessWall time.Duration
	// JoinWall is the wall time of the join executor itself.
	JoinWall time.Duration
	// PrefetchedPages is the number of page reads the pipelined executor
	// issued ahead of demand, overlapped with the previous cluster's CPU
	// phase (0 with prefetch off, under FIFO, or for unclustered methods).
	PrefetchedPages int64
	// ModeledWallSeconds is the modeled pipeline wall clock of the join
	// phase under the linear disk model: per cluster, demand I/O plus
	// max(overlapped I/O, modeled CPU). ModeledSerialSeconds is the same
	// work with every read at demand time; their difference is the modeled
	// time the overlap hides. Both are zero for unclustered methods. They
	// are deterministic for a fixed option set but — unlike Report — move
	// between prefetch on and off; that movement is the point.
	ModeledWallSeconds   float64
	ModeledSerialSeconds float64
	// OverlapIOSeconds is the modeled I/O time charged as overlapped.
	OverlapIOSeconds float64
	// Batch dispatch profile of the clustered executor (all zero with
	// KernelBatchOff, for non-batchable joiners, for unclustered methods, or
	// when Options.Metrics is off — the counters ride the metrics snapshot):
	// the number of clusters evaluated as block tasks, their marked cells and
	// concatenated block rows, and the wall time spent building the blocks.
	BatchClusters  int
	BatchCells     int
	BatchRows      int
	BatchBuildWall time.Duration
	// Shards and ShardWorkers report sharded execution (0 when unsharded):
	// the planned shard count and the concurrent shard workers. When sharded,
	// ModeledWallSeconds is the slowest shard's modeled clock (shards run
	// concurrently) while ModeledSerialSeconds sums every shard — their ratio
	// is the modeled sharding speedup benchrunner reports.
	Shards       int
	ShardWorkers int
	// MeasuredIOWall and MeasuredReads report the physical backend read
	// account under Options.Storage = StorageFile: the number of real file
	// reads served and their summed wall latencies in seconds (read +
	// checksum + decode; a sum of latencies, not an elapsed window —
	// concurrent background reads can exceed JoinWall). Both are zero under
	// the simulator. Host-dependent and excluded from the determinism
	// contract, like every other ExecStats field.
	MeasuredIOWall float64
	MeasuredReads  int64
	// Cancelled reports that the run stopped early because the context was
	// cancelled; the accompanying error carries the cause.
	Cancelled bool
}

// Result reports the outcome and simulated cost of a join.
type Result struct {
	// Report is the cost breakdown (simulated I/O seconds, modeled CPU and
	// preprocessing seconds, page reads, seeks, comparisons, result count).
	Report join.Report
	// Matrix statistics (zero for NLJ, EGO, BFRJ).
	MarkedEntries int
	MatrixDensity float64
	// MatrixSeconds is the modeled cost of prediction-matrix construction,
	// reported separately: the paper folds it into index preprocessing and
	// excludes it from Figure 10's join costs.
	MatrixSeconds float64
	// Pairs holds collected result pairs when Options.CollectPairs is set.
	Pairs [][2]int
	// Truncated reports that more pairs matched than were collected.
	Truncated bool
	// Exec is the wall-clock execution profile (not deterministic; see
	// ExecStats).
	Exec ExecStats
	// Metrics is the phase-scoped metrics snapshot (nil unless
	// Options.Metrics or Options.Trace was set). Like ExecStats it is
	// outside the determinism contract: its wall-clock fields vary run to
	// run, and collecting it never changes Report or Pairs.
	Metrics *metrics.Metrics
}

// Count returns the number of result pairs found.
func (r *Result) Count() int64 { return r.Report.Results }

// TotalSeconds returns the total simulated join cost.
func (r *Result) TotalSeconds() float64 { return r.Report.Total() }

// Join executes the join of a and b under opt. For a self join pass the
// same dataset twice: each unordered result pair is then reported once, and
// for sequence data trivially overlapping window pairs (start distance less
// than the window length) are excluded.
//
// Join is JoinContext without cancellation.
func (s *System) Join(a, b *Dataset, opt Options) (*Result, error) {
	return s.JoinContext(context.Background(), a, b, opt)
}

// JoinContext is Join with cancellation: ctx is checked between clusters
// (blocks, partitions — each method's unit of work), so a cancelled join
// returns promptly with ctx's error and a partial Result whose Exec.Cancelled
// is set. Worker goroutines are always joined before JoinContext returns,
// cancelled or not.
//
// Concurrent JoinContext calls on one System are safe: each run charges its
// simulated I/O to a private disk session, so its Report is identical to what
// a solo run would produce.
func (s *System) JoinContext(ctx context.Context, a, b *Dataset, opt Options) (*Result, error) {
	return s.joinContext(ctx, a, b, opt, nil)
}

// joinContext is the full join implementation. shared, when non-nil, is an
// externally owned concurrent frame cache (the serving layer's): it is
// attached to the run's buffer pool — and to every shard's pool when sharded —
// so concurrent runs reuse each other's materialized frames. It is strictly
// observational: every local pool miss still charges the run's private disk
// session, so Report and Pairs are bit-identical with or without it (see
// buffer.SharedPool).
func (s *System) joinContext(ctx context.Context, a, b *Dataset, opt Options, shared *buffer.SharedPool) (*Result, error) {
	if err := s.checkJoinable(a, b); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	res := &Result{}
	res.Exec.Workers = 1
	if opt.Parallelism > 1 {
		res.Exec.Workers = opt.Parallelism
	}
	if err := ctx.Err(); err != nil {
		res.Exec.Cancelled = true
		return res, err
	}

	var wp *join.WorkerPool
	if opt.Parallelism > 1 {
		wp = join.NewWorkerPool(opt.Parallelism)
		defer wp.Close()
	}
	var mc *metrics.Collector // nil when disabled: every hook no-ops
	if opt.Metrics {
		mc = metrics.New(metrics.Config{Trace: opt.Trace, TraceCapacity: opt.TraceCapacity})
	}
	kernels := opt.Kernels == KernelsOn

	// Resolve the physical page source. StorageFile requires a store attached
	// via UseFileStore; with prefetch on it also gets a small dedicated reader
	// pool so staged backend reads overlap compute. Blocked preads sit in
	// syscalls, not on GOMAXPROCS slots, so a modest fixed width overlaps I/O
	// even on single-core hosts.
	var backend disk.Backend
	if opt.Storage == StorageFile {
		st := s.fileStore()
		if st == nil {
			return nil, fmt.Errorf("pmjoin: Options.Storage is file but no store is attached; call System.UseFileStore first")
		}
		backend = st
	}
	var readers *join.WorkerPool
	if backend != nil && opt.Pipeline.Prefetch == PrefetchOn {
		readers = join.NewWorkerPool(storageReaderWorkers)
		defer readers.Close()
	}

	eng := &join.Engine{
		Disk:        s.d,
		BufferSize:  opt.BufferPages,
		Policy:      buffer.Policy(opt.Policy),
		Workers:     wp,
		Ctx:         ctx,
		Metrics:     mc,
		Kernels:     kernels,
		KernelBatch: opt.KernelBatch == KernelBatchOn,
		Shared:      shared,
		Backend:     backend,
		Readers:     readers,
	}
	if opt.CollectPairs {
		eng.OnPair = func(i, j int) {
			if len(res.Pairs) < opt.MaxPairs {
				res.Pairs = append(res.Pairs, [2]int{i, j})
			} else {
				res.Truncated = true
			}
		}
	}

	self := a == b || a.ds.File == b.ds.File
	joiner := s.joiner(a, opt.Epsilon, self, kernels)

	timedJoin := func(f func() (*join.Report, error)) (*join.Report, error) {
		start := time.Now()
		rep, err := f()
		res.Exec.JoinWall = time.Since(start)
		return rep, err
	}

	var rep *join.Report
	var err error
	var shardSnaps []*metrics.Metrics // per-shard snapshots, folded in at Finish
	switch opt.Method {
	case NLJ:
		rep, err = timedJoin(func() (*join.Report, error) { return eng.NLJ(&a.ds, &b.ds, joiner) })
	case PMNLJ:
		var m *predmat.Matrix
		m, err = s.buildMatrix(a, b, opt, res, wp, mc)
		if err == nil {
			rep, err = timedJoin(func() (*join.Report, error) { return eng.PMNLJ(&a.ds, &b.ds, m, joiner) })
		}
	case RandomSC, SC, CC:
		var m *predmat.Matrix
		m, err = s.buildMatrix(a, b, opt, res, wp, mc)
		if err != nil {
			break
		}
		mc.PhaseStart(metrics.PhaseCluster)
		preStart := time.Now()
		var clusters []*cluster.Cluster
		var pre float64
		if opt.Method == CC {
			clusters, err = cluster.Cost(m, opt.BufferPages, cluster.CostOptions{
				HistogramBins: opt.HistogramBins,
				Seed:          opt.Seed,
				IO: cluster.IOModel{
					SeekTime:     s.model.SeekSeconds,
					TransferTime: s.model.TransferSeconds,
				},
			})
			pre = join.ModelCCPreprocess(m.Marked())
		} else {
			clusters, err = cluster.SquareOpts(m, opt.BufferPages, cluster.SquareOptions{
				RowFraction: opt.ClusterRowFraction,
			})
			pre = join.ModelSCPreprocess(m.Marked())
		}
		res.Exec.PreprocessWall = time.Since(preStart)
		mc.PhaseEnd()
		if err != nil {
			break
		}
		order := join.OrderGreedySharing
		if opt.Method == RandomSC {
			order = join.OrderRandom
		}
		if opt.Sharding.Shards > 0 {
			rep, err = timedJoin(func() (*join.Report, error) {
				r2, snaps, err2 := s.joinSharded(ctx, a, b, m, clusters, joiner, order, pre, opt, res, wp, mc, shared, backend, readers)
				shardSnaps = snaps
				return r2, err2
			})
		} else {
			// The timeline is attached with prefetch on AND off, so both modes
			// report modeled wall/serial clocks (off: every read is demand, the
			// clocks coincide) and the pipeline experiment can difference them.
			tl := disk.NewTimeline()
			eng.Timeline = tl
			eng.Prefetch = opt.Pipeline.Prefetch == PrefetchOn
			eng.PrefetchDepth = opt.Pipeline.PrefetchDepth
			rep, err = timedJoin(func() (*join.Report, error) {
				return eng.Clustered(&a.ds, &b.ds, m, clusters, joiner, join.ClusteredOptions{
					Order:             order,
					Seed:              opt.Seed,
					PreprocessSeconds: pre,
				})
			})
			ts := tl.Stats()
			res.Exec.PrefetchedPages = ts.OverlapReads
			res.Exec.ModeledWallSeconds = ts.WallSeconds
			res.Exec.ModeledSerialSeconds = ts.SerialSeconds
			res.Exec.OverlapIOSeconds = ts.OverlapIOSeconds
			mc.RecordTimeline(ts)
		}
		if rep != nil && opt.Method == CC {
			rep.Method = "CC"
		}
	case EGO:
		rep, err = timedJoin(func() (*join.Report, error) {
			return ego.Run(eng, &a.ds, &b.ds, s.egoAdapter(a, opt.Epsilon, self, kernels), ego.Options{SelfJoin: self})
		})
	case BFRJ:
		rep, err = timedJoin(func() (*join.Report, error) {
			return bfrj.Run(eng, &a.ds, &b.ds, joiner, bfrj.Options{
				Eps:      s.matrixEpsilon(a, opt.Epsilon),
				Pred:     s.predictor(a),
				SelfJoin: self,
				Kernels:  kernels,
			})
		})
	case PBSM:
		if a.kind != KindVector {
			err = fmt.Errorf("pmjoin: PBSM supports vector data only, got %v", a.kind)
			break
		}
		rep, err = timedJoin(func() (*join.Report, error) {
			return pbsm.Run(eng, &a.ds, &b.ds, joiner, pbsm.Options{
				Eps:      opt.Epsilon,
				SelfJoin: self,
			})
		})
	default:
		err = fmt.Errorf("pmjoin: unknown method %v", opt.Method)
	}
	if err != nil {
		if ctx.Err() != nil {
			res.Exec.Cancelled = true
			return res, err
		}
		return nil, err
	}
	res.Report = *rep
	if opt.Sharding.Shards == 0 {
		// Sharded runs sum per-shard accounts inside joinSharded; here the
		// single engine's account is the whole story.
		m := eng.MeasuredIO()
		res.Exec.MeasuredIOWall = m.Seconds
		res.Exec.MeasuredReads = m.Reads
	}
	if wp != nil {
		mc.RecordQueueHighWater(wp.QueueHighWater())
	}
	res.Metrics = mc.Finish()
	for _, sn := range shardSnaps {
		res.Metrics.AddShard(sn)
	}
	if res.Metrics != nil {
		for _, cs := range res.Metrics.Clusters {
			if cs.BatchCells > 0 {
				res.Exec.BatchClusters++
				res.Exec.BatchCells += cs.BatchCells
				res.Exec.BatchRows += cs.BatchRows
				res.Exec.BatchBuildWall += cs.BatchBuild
			}
		}
	}
	return res, nil
}

// joinSharded runs the clustered join through the shard planner and
// coordinator: the schedule is cut into opt.Sharding.Shards segments along
// minimum-sharing edges and each shard reruns the unchanged clustered
// executor over its subset, with a cold disk session and private buffer pool
// per shard. Results merge in shard-index order (reports and timelines sum /
// max deterministically; pairs concatenate under the global cap), so the
// Report and Pairs are bit-identical for any Sharding.Workers — and, at
// Shards=1, to the unsharded executor, since the single shard re-derives the
// identical global schedule. The returned snapshots are the per-shard metrics
// (empty when metrics are off), appended to Result.Metrics after Finish.
func (s *System) joinSharded(ctx context.Context, a, b *Dataset, m *predmat.Matrix,
	clusters []*cluster.Cluster, joiner join.ObjectJoiner, order join.ClusterOrder,
	pre float64, opt Options, res *Result, wp *join.WorkerPool, mc *metrics.Collector,
	shared *buffer.SharedPool, backend disk.Backend, readers *join.WorkerPool,
) (*join.Report, []*metrics.Metrics, error) {
	pageSets := shard.PageSets(clusters, a.ds.File, b.ds.File)
	plan, err := shard.Cut(pageSets, shard.Entries(clusters), opt.Sharding.Shards, s.shardCost())
	if err != nil {
		return nil, nil, err
	}
	runner := &shard.LocalRunner{
		Disk:              s.d,
		BufferSize:        opt.BufferPages,
		Policy:            buffer.Policy(opt.Policy),
		Workers:           wp,
		Kernels:           opt.Kernels == KernelsOn,
		KernelBatch:       opt.KernelBatch == KernelBatchOn,
		Shared:            shared,
		Prefetch:          opt.Pipeline.Prefetch == PrefetchOn,
		PrefetchDepth:     opt.Pipeline.PrefetchDepth,
		Backend:           backend,
		Readers:           readers,
		R:                 &a.ds,
		S:                 &b.ds,
		Matrix:            m,
		Clusters:          clusters,
		Joiner:            joiner,
		Order:             order,
		Seed:              opt.Seed,
		PreprocessSeconds: pre,
		CollectPairs:      opt.CollectPairs,
		MaxPairs:          opt.MaxPairs,
		Metrics:           opt.Metrics,
		MetricsConfig:     metrics.Config{Trace: opt.Trace, TraceCapacity: opt.TraceCapacity},
	}
	coord := &shard.Coordinator{Runner: runner, Workers: opt.Sharding.Workers}
	results, err := coord.Run(ctx, plan.Tasks())
	if err != nil {
		return nil, nil, err
	}
	rep := shard.MergeReports(results)
	if rep == nil {
		// Unreachable after a successful coordinator run (every slot filled,
		// shard 0 present); guarded anyway so a future transport bug surfaces
		// as an error instead of a nil-Report dereference below.
		return nil, nil, fmt.Errorf("pmjoin: sharded merge yielded no report")
	}
	if opt.CollectPairs {
		res.Pairs, res.Truncated = shard.MergePairs(results, opt.MaxPairs)
	}
	ts := shard.MergeTimelines(results)
	res.Exec.PrefetchedPages = ts.OverlapReads
	res.Exec.ModeledWallSeconds = ts.WallSeconds
	res.Exec.ModeledSerialSeconds = ts.SerialSeconds
	res.Exec.OverlapIOSeconds = ts.OverlapIOSeconds
	res.Exec.Shards = len(plan.Shards)
	res.Exec.ShardWorkers = coordWorkers(opt.Sharding.Workers, len(plan.Shards))
	var meas disk.Measured
	for _, r := range results {
		if r != nil {
			meas = meas.Add(r.Measured)
		}
	}
	res.Exec.MeasuredIOWall = meas.Seconds
	res.Exec.MeasuredReads = meas.Reads
	mc.RecordTimeline(ts)
	var snaps []*metrics.Metrics
	for _, r := range results {
		if r != nil && r.Metrics != nil {
			snaps = append(snaps, r.Metrics)
		}
	}
	return rep, snaps, nil
}

// coordWorkers mirrors the coordinator's clamp so ExecStats reports the
// worker count that actually ran.
func coordWorkers(workers, tasks int) int {
	if workers <= 0 || workers > tasks {
		return tasks
	}
	return workers
}

// shardCost is the planner's balance model: the system's linear disk terms
// plus a per-marked-entry CPU weight. Only the relative magnitudes matter to
// the cut, so the SC preprocessing constant serves as the entry weight proxy.
func (s *System) shardCost() shard.CostModel {
	return shard.CostModel{
		SeekSeconds:     s.model.SeekSeconds,
		TransferSeconds: s.model.TransferSeconds,
		EntrySeconds:    join.SCEntryCost,
	}
}

// checkJoinable verifies that a and b belong to this system and can be
// joined with each other. It is the shared precondition of Join and Explain.
func (s *System) checkJoinable(a, b *Dataset) error {
	if a.sys != s || b.sys != s {
		return fmt.Errorf("pmjoin: datasets belong to a different system")
	}
	if a.kind != b.kind {
		return fmt.Errorf("pmjoin: cannot join %v with %v data", a.kind, b.kind)
	}
	return s.checkCompatible(a, b)
}

func (s *System) checkCompatible(a, b *Dataset) error {
	switch a.kind {
	case KindVector:
		if a.dim != b.dim {
			return fmt.Errorf("pmjoin: dimension mismatch %d vs %d", a.dim, b.dim)
		}
		if a.norm != b.norm {
			return fmt.Errorf("pmjoin: norm mismatch %v vs %v", a.norm, b.norm)
		}
	case KindSeries, KindString:
		if a.window != b.window {
			return fmt.Errorf("pmjoin: window mismatch %d vs %d", a.window, b.window)
		}
	}
	return nil
}

// joiner builds the object joiner for the data kind.
func (s *System) joiner(a *Dataset, eps float64, self, kernels bool) join.ObjectJoiner {
	switch a.kind {
	case KindVector:
		return join.VectorJoiner{Norm: a.norm, Eps: eps, Self: self, Kernels: kernels}
	case KindSeries:
		return join.SeriesJoiner{Eps: eps, Self: self, ExcludeOverlap: a.window, Kernels: kernels}
	default:
		// String joins filter on integer frequency distance; there is no
		// float kernel to route through.
		return join.StringJoiner{MaxEdit: int(eps), Self: self, ExcludeOverlap: a.window}
	}
}

// predictor builds the lower-bounding predictor of Table 1.
func (s *System) predictor(a *Dataset) predmat.Predictor {
	switch a.kind {
	case KindVector:
		return predmat.NormPredictor{Norm: a.norm}
	case KindSeries:
		return predmat.NormPredictor{Norm: geom.L2, Scale: a.scale}
	default:
		return mrsindex.Predictor{}
	}
}

// matrixEpsilon returns the threshold in the predictor's space (identical
// to the join epsilon for every kind; kept as a seam for future predictors).
func (s *System) matrixEpsilon(a *Dataset, eps float64) float64 { return eps }

// buildMatrix returns the prediction matrix for (a, b, opt), from the cache
// when available. Concurrent cold-start callers are collapsed by single
// flight: exactly one builds (charging its own wall clock and metrics phase),
// the rest block and adopt its entry, so every caller observes one canonical
// matrix per key and no build runs twice. The build itself is deterministic,
// parallel or not, so which caller built is unobservable in the Result.
func (s *System) buildMatrix(a, b *Dataset, opt Options, res *Result, wp *join.WorkerPool, mc *metrics.Collector) (*predmat.Matrix, error) {
	depth := opt.FilterDepth
	switch {
	case depth == 0:
		depth = predmat.DefaultFilterDepth
	case depth < 0:
		depth = 0
	}
	key := matrixKey{fileA: a.ds.File, fileB: b.ds.File, eps: opt.Epsilon, depth: depth}
	s.mu.RLock()
	e, ok := s.matrixCache[key]
	s.mu.RUnlock()
	if !ok {
		var err error
		e, err, _ = s.matrixFlight.Do(key, func() (*matrixEntry, error) {
			// Re-check inside the flight: a flight that completed between our
			// miss and joining this one has already stored the entry.
			s.mu.RLock()
			w, hit := s.matrixCache[key]
			s.mu.RUnlock()
			if hit {
				return w, nil
			}
			start := time.Now()
			var stats predmat.BuildStats
			// Kernels only changes how the build computes each bound, never
			// its outcome, so the cache key does not include it.
			bopts := predmat.BuildOptions{FilterDepth: depth, Stats: &stats, Kernels: opt.Kernels == KernelsOn}
			if wp != nil {
				bopts.Runner = wp
			}
			mc.PhaseStart(metrics.PhaseMatrix)
			m, err := predmat.Build(a.ds.Root, b.ds.Root, a.ds.Pages, b.ds.Pages,
				s.matrixEpsilon(a, opt.Epsilon), s.predictor(a), bopts)
			mc.PhaseEnd()
			if err != nil {
				return nil, err
			}
			res.Exec.MatrixWall = time.Since(start)
			ne := &matrixEntry{
				m:       m,
				seconds: float64(stats.SweepEvents+stats.PairTests) * join.MatrixEntryCost,
			}
			s.mu.Lock()
			defer s.mu.Unlock()
			s.matrixCache[key] = ne
			return ne, nil
		})
		if err != nil {
			return nil, err
		}
	}
	res.MarkedEntries = e.m.Marked()
	res.MatrixDensity = e.m.Density()
	res.MatrixSeconds = e.seconds
	return e.m, nil
}

// egoAdapter builds the EGO grid adapter for the data kind.
func (s *System) egoAdapter(a *Dataset, eps float64, self, kernels bool) ego.Adapter {
	switch a.kind {
	case KindVector:
		cell := eps
		if cell <= 0 {
			cell = math.SmallestNonzeroFloat64
		}
		return &vectorEGO{norm: a.norm, eps: eps, cell: cell, self: self,
			kernels: kernels, th: kernel.NewThreshold(a.norm, eps)}
	case KindSeries:
		cell := eps / a.scale
		if cell <= 0 {
			cell = math.SmallestNonzeroFloat64
		}
		return &seriesEGO{eps: eps, cell: cell, self: self, window: a.window, features: a.features,
			kernels: kernels, th: kernel.NewThresholdSq(eps)}
	default:
		cell := eps
		if cell < 1 {
			cell = 1
		}
		return &stringEGO{maxEdit: int(eps), cell: int(cell), self: self, window: a.window}
	}
}
