package pmjoin

import (
	"reflect"
	"testing"

	"pmjoin/internal/dataset"
)

// TestBatchKernelsDeterminism is the batch half of the determinism contract:
// a clustered join with KernelBatch on produces a Result (Report, Pairs,
// matrix stats) and a Plan bit-for-bit identical to the run with KernelBatch
// off, across parallelism {1, GOMAXPROCS}, sharding {off, 3 shards} and
// prefetch {on, off}. Each mode runs on a fresh System over identical
// generated data. The vector workload uses dim 8 so the whole-cluster SIMD
// path (dim >= 8) is what's being compared, not the scalar fallback; the
// series and self-join workloads pin the fallback seams.
func TestBatchKernelsDeterminism(t *testing.T) {
	type workload struct {
		name    string
		methods []Method
		full    bool // run the full sharding x prefetch cross
		build   func(t *testing.T) (*System, *Dataset, *Dataset)
		opt     Options
	}
	loads := []workload{
		{
			// Non-self L2 at dim 8: the batchable path proper.
			name:    "vector-L2-dim8",
			methods: []Method{SC, CC, RandomSC},
			full:    true,
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 512})
				da, err := sys.AddVectors("a", randomVecs(300, 8, 1), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(200, 8, 2), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 0.55, BufferPages: 16, CollectPairs: true},
		},
		{
			// L1 at dim 3: the batch path's non-L2 threshold selection and the
			// scalar (dim < 8) block kernels.
			name:    "vector-L1",
			methods: []Method{SC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(250, 3, 3), VectorOptions{NormP: 1})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddVectors("b", randomVecs(200, 3, 4), VectorOptions{NormP: 1})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 0.15, BufferPages: 16, CollectPairs: true},
		},
		{
			// Self join: not batchable (id-based skips), so the knob must be a
			// silent no-op end to end.
			name:    "vector-self",
			methods: []Method{SC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 256})
				da, err := sys.AddVectors("a", randomVecs(300, 2, 5), VectorOptions{})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, da
			},
			opt: Options{Epsilon: 0.05, BufferPages: 16, CollectPairs: true},
		},
		{
			// Non-self series join: the SeriesJoiner batch seam.
			name:    "series",
			methods: []Method{SC, CC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 1024})
				da, err := sys.AddSeries("wa", dataset.RandomWalk(2000, 20), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddSeries("wb", dataset.RandomWalk(1500, 21), SeriesOptions{Window: 32, Stride: 4})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 8.0, BufferPages: 16, CollectPairs: true},
		},
		{
			// Strings have no float kernel: silently per-pair under the knob.
			name:    "string",
			methods: []Method{SC},
			build: func(t *testing.T) (*System, *Dataset, *Dataset) {
				sys := NewSystem(DiskModel{PageBytes: 512})
				sa := dataset.DNA(2000, 10)
				sb := dataset.DNA(1500, 11)
				dataset.PlantHomologies(sb, sa, 5, 80, 0.02, 12)
				da, err := sys.AddString("a", sa, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				db, err := sys.AddString("b", sb, StringOptions{Window: 64, Stride: 8})
				if err != nil {
					t.Fatal(err)
				}
				return sys, da, db
			},
			opt: Options{Epsilon: 4, BufferPages: 16, CollectPairs: true},
		},
	}

	type config struct {
		par      int
		shards   int
		prefetch PrefetchMode
	}
	small := []config{
		{par: 1, prefetch: PrefetchDefault},
		{par: 0, prefetch: PrefetchDefault},
	}
	fullCross := []config{
		{par: 1, shards: 0, prefetch: PrefetchOn},
		{par: 1, shards: 0, prefetch: PrefetchOff},
		{par: 1, shards: 3, prefetch: PrefetchOn},
		{par: 0, shards: 0, prefetch: PrefetchOn},
		{par: 0, shards: 0, prefetch: PrefetchOff},
		{par: 0, shards: 3, prefetch: PrefetchOn},
		{par: 0, shards: 3, prefetch: PrefetchOff},
	}

	for _, w := range loads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, m := range w.methods {
				m := m
				t.Run(m.String(), func(t *testing.T) {
					run := func(mode KernelBatchMode, c config) (*Result, *Plan) {
						sys, a, b := w.build(t)
						opt := w.opt
						opt.Method = m
						opt.KernelBatch = mode
						opt.Parallelism = c.par
						opt.Sharding = ShardingOptions{Shards: c.shards}
						opt.Pipeline.Prefetch = c.prefetch
						res, err := sys.Join(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						plan, err := sys.Explain(a, b, opt)
						if err != nil {
							t.Fatal(err)
						}
						return res, plan
					}
					configs := small
					if w.full {
						configs = fullCross
					}
					for _, c := range configs {
						off, offPlan := run(KernelBatchOff, c)
						on, onPlan := run(KernelBatchOn, c)
						if got, want := deterministicFields(on), deterministicFields(off); !reflect.DeepEqual(got, want) {
							t.Errorf("par %d shards %d prefetch %v: batch-on result differs:\n off: %+v\n on:  %+v",
								c.par, c.shards, c.prefetch, want, got)
						}
						if !reflect.DeepEqual(onPlan, offPlan) {
							t.Errorf("par %d shards %d prefetch %v: batch-on plan differs:\n off: %+v\n on:  %+v",
								c.par, c.shards, c.prefetch, offPlan, onPlan)
						}
						if c.par == 1 && c.shards == 0 && off.Count() == 0 {
							t.Error("workload has no results; the comparison is vacuous")
						}
					}
				})
			}
		})
	}
}

// TestBatchDispatchRan guards the determinism comparison against vacuity from
// the other side: with metrics on, a batchable clustered run must report that
// the block path actually evaluated clusters — and the per-pair run must not.
func TestBatchDispatchRan(t *testing.T) {
	build := func() (*System, *Dataset, *Dataset) {
		sys := NewSystem(DiskModel{PageBytes: 512})
		da, err := sys.AddVectors("a", randomVecs(300, 8, 1), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := sys.AddVectors("b", randomVecs(200, 8, 2), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return sys, da, db
	}
	run := func(mode KernelBatchMode) *Result {
		sys, a, b := build()
		res, err := sys.Join(a, b, Options{
			Method: SC, Epsilon: 0.55, BufferPages: 16,
			KernelBatch: mode, Metrics: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(KernelBatchOn)
	if on.Exec.BatchClusters == 0 || on.Exec.BatchCells == 0 || on.Exec.BatchRows == 0 {
		t.Errorf("batch-on run reported no batch dispatch: %+v", on.Exec)
	}
	if on.Exec.BatchClusters > on.Report.Clusters {
		t.Errorf("batched %d of %d clusters", on.Exec.BatchClusters, on.Report.Clusters)
	}
	off := run(KernelBatchOff)
	if off.Exec.BatchClusters != 0 || off.Exec.BatchCells != 0 {
		t.Errorf("batch-off run reported batch dispatch: %+v", off.Exec)
	}
}

// TestKernelBatchModeDefault pins the normalization: the zero value resolves
// to KernelBatchOn, and an explicit off stays off.
func TestKernelBatchModeDefault(t *testing.T) {
	opt := Options{Method: NLJ, Epsilon: 1, BufferPages: 4}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.KernelBatch != KernelBatchOn {
		t.Errorf("default kernel batch = %v, want on", opt.KernelBatch)
	}
	opt = Options{Method: NLJ, Epsilon: 1, BufferPages: 4, KernelBatch: KernelBatchOff}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.KernelBatch != KernelBatchOff {
		t.Errorf("explicit off became %v", opt.KernelBatch)
	}
	bad := Options{Method: NLJ, Epsilon: 1, BufferPages: 4, KernelBatch: KernelBatchMode(99)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted kernel batch mode 99")
	}
}

// TestKernelBatchModeText pins the text round-trip alongside the other enums.
func TestKernelBatchModeText(t *testing.T) {
	for _, k := range []KernelBatchMode{KernelBatchDefault, KernelBatchOn, KernelBatchOff} {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back KernelBatchMode
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("round trip %v -> %q -> %v", k, text, back)
		}
	}
	if _, err := ParseKernelBatchMode("sometimes"); err == nil {
		t.Error("ParseKernelBatchMode accepted garbage")
	}
	if k, err := ParseKernelBatchMode("ON"); err != nil || k != KernelBatchOn {
		t.Errorf("ParseKernelBatchMode(ON) = %v, %v", k, err)
	}
	if _, err := KernelBatchMode(42).MarshalText(); err == nil {
		t.Error("MarshalText accepted out-of-range mode")
	}
}
