package pmjoin

import (
	"flag"
	"runtime"
	"testing"
)

func TestOptionsValidateDefaults(t *testing.T) {
	o := Options{Method: SC, Epsilon: 0.1, BufferPages: 8}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.MaxPairs != 100000 {
		t.Errorf("MaxPairs = %d, want 100000", o.MaxPairs)
	}
	if o.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism = %d, want GOMAXPROCS %d", o.Parallelism, runtime.GOMAXPROCS(0))
	}
	if o.ClusterRowFraction != 0.5 {
		t.Errorf("ClusterRowFraction = %g, want 0.5", o.ClusterRowFraction)
	}
	if o.HistogramBins != 100 {
		t.Errorf("HistogramBins = %d, want 100", o.HistogramBins)
	}
	// Idempotent: a second Validate must not change anything.
	before := o
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o != before {
		t.Errorf("Validate not idempotent: %+v vs %+v", o, before)
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	base := Options{Method: SC, Epsilon: 0.1, BufferPages: 8}
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"unknown method", func(o *Options) { o.Method = Method(99) }},
		{"tiny buffer", func(o *Options) { o.BufferPages = 3 }},
		{"negative epsilon", func(o *Options) { o.Epsilon = -1 }},
		{"unknown policy", func(o *Options) { o.Policy = ReplacementPolicy(7) }},
		{"negative parallelism", func(o *Options) { o.Parallelism = -2 }},
		{"negative MaxPairs", func(o *Options) { o.MaxPairs = -1 }},
		{"row fraction 1", func(o *Options) { o.ClusterRowFraction = 1 }},
		{"negative histogram bins", func(o *Options) { o.HistogramBins = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mut(&o)
			if err := o.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", o)
			}
		})
	}
}

// TestJoinRejectsNegativeMaxPairs is the bugfix regression test: a negative
// MaxPairs used to silently collect nothing; it is now rejected up front.
func TestJoinRejectsNegativeMaxPairs(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	_, err := sys.Join(da, db, Options{
		Method: NLJ, Epsilon: 0.1, BufferPages: 8, CollectPairs: true, MaxPairs: -1,
	})
	if err == nil {
		t.Fatal("negative MaxPairs accepted")
	}
}

func TestEnumTextRoundTrip(t *testing.T) {
	for m := NLJ; m <= PBSM; m++ {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Method
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("method %v round-tripped to %v", m, back)
		}
	}
	for k := KindVector; k <= KindString; k++ {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	for p := LRU; p <= FIFO; p++ {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ReplacementPolicy
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("policy %v round-tripped to %v", p, back)
		}
	}
	if _, err := Method(99).MarshalText(); err == nil {
		t.Error("unknown method marshaled")
	}
	if _, err := Kind(99).MarshalText(); err == nil {
		t.Error("unknown kind marshaled")
	}
	if _, err := ReplacementPolicy(99).MarshalText(); err == nil {
		t.Error("unknown policy marshaled")
	}
}

func TestParseEnumSpellings(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Method
	}{
		{"pm-NLJ", PMNLJ}, {"pmnlj", PMNLJ}, {"PM_NLJ", PMNLJ},
		{"random-SC", RandomSC}, {"randomsc", RandomSC}, {"Random_SC", RandomSC},
		{" sc ", SC}, {"CC", CC}, {"ego", EGO}, {"bfrj", BFRJ}, {"PBSM", PBSM},
	} {
		got, err := ParseMethod(tc.in)
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMethod(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("unknown method parsed")
	}
	if k, err := ParseKind("Series"); err != nil || k != KindSeries {
		t.Errorf("ParseKind(Series) = %v, %v", k, err)
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind parsed")
	}
	if p, err := ParseReplacementPolicy("fifo"); err != nil || p != FIFO {
		t.Errorf("ParseReplacementPolicy(fifo) = %v, %v", p, err)
	}
	if _, err := ParseReplacementPolicy("nope"); err == nil {
		t.Error("unknown policy parsed")
	}
}

// TestFlagTextVar exercises the integration the CLIs rely on: enum values
// bound with flag.TextVar parse flexible spellings and reject junk.
func TestFlagTextVar(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	m := SC
	k := KindVector
	p := LRU
	fs.TextVar(&m, "method", m, "")
	fs.TextVar(&k, "kind", k, "")
	fs.TextVar(&p, "policy", p, "")
	if err := fs.Parse([]string{"-method", "pm-nlj", "-kind", "STRING", "-policy", "Fifo"}); err != nil {
		t.Fatal(err)
	}
	if m != PMNLJ || k != KindString || p != FIFO {
		t.Fatalf("parsed %v/%v/%v", m, k, p)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	fs2.SetOutput(discard{})
	m2 := SC
	fs2.TextVar(&m2, "method", m2, "")
	if err := fs2.Parse([]string{"-method", "bogus"}); err == nil {
		t.Fatal("bogus method accepted by flag parsing")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
