package pmjoin

import (
	"flag"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func TestOptionsValidateDefaults(t *testing.T) {
	o := Options{Method: SC, Epsilon: 0.1, BufferPages: 8}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.MaxPairs != 100000 {
		t.Errorf("MaxPairs = %d, want 100000", o.MaxPairs)
	}
	if o.Parallelism != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism = %d, want GOMAXPROCS %d", o.Parallelism, runtime.GOMAXPROCS(0))
	}
	if o.ClusterRowFraction != 0.5 {
		t.Errorf("ClusterRowFraction = %g, want 0.5", o.ClusterRowFraction)
	}
	if o.HistogramBins != 100 {
		t.Errorf("HistogramBins = %d, want 100", o.HistogramBins)
	}
	// Idempotent: a second Validate must not change anything.
	before := o
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o != before {
		t.Errorf("Validate not idempotent: %+v vs %+v", o, before)
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	base := Options{Method: SC, Epsilon: 0.1, BufferPages: 8}
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"unknown method", func(o *Options) { o.Method = Method(99) }},
		{"tiny buffer", func(o *Options) { o.BufferPages = 3 }},
		{"negative epsilon", func(o *Options) { o.Epsilon = -1 }},
		{"unknown policy", func(o *Options) { o.Policy = ReplacementPolicy(7) }},
		{"negative parallelism", func(o *Options) { o.Parallelism = -2 }},
		{"negative MaxPairs", func(o *Options) { o.MaxPairs = -1 }},
		{"row fraction 1", func(o *Options) { o.ClusterRowFraction = 1 }},
		{"negative histogram bins", func(o *Options) { o.HistogramBins = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mut(&o)
			if err := o.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", o)
			}
		})
	}
}

// TestJoinRejectsNegativeMaxPairs is the bugfix regression test: a negative
// MaxPairs used to silently collect nothing; it is now rejected up front.
func TestJoinRejectsNegativeMaxPairs(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	_, err := sys.Join(da, db, Options{
		Method: NLJ, Epsilon: 0.1, BufferPages: 8, CollectPairs: true, MaxPairs: -1,
	})
	if err == nil {
		t.Fatal("negative MaxPairs accepted")
	}
}

func TestEnumTextRoundTrip(t *testing.T) {
	for m := NLJ; m <= PBSM; m++ {
		text, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Method
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != m {
			t.Errorf("method %v round-tripped to %v", m, back)
		}
	}
	for k := KindVector; k <= KindString; k++ {
		text, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	for p := LRU; p <= FIFO; p++ {
		text, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back ReplacementPolicy
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("policy %v round-tripped to %v", p, back)
		}
	}
	if _, err := Method(99).MarshalText(); err == nil {
		t.Error("unknown method marshaled")
	}
	if _, err := Kind(99).MarshalText(); err == nil {
		t.Error("unknown kind marshaled")
	}
	if _, err := ReplacementPolicy(99).MarshalText(); err == nil {
		t.Error("unknown policy marshaled")
	}
}

func TestParseEnumSpellings(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Method
	}{
		{"pm-NLJ", PMNLJ}, {"pmnlj", PMNLJ}, {"PM_NLJ", PMNLJ},
		{"random-SC", RandomSC}, {"randomsc", RandomSC}, {"Random_SC", RandomSC},
		{" sc ", SC}, {"CC", CC}, {"ego", EGO}, {"bfrj", BFRJ}, {"PBSM", PBSM},
	} {
		got, err := ParseMethod(tc.in)
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMethod(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("unknown method parsed")
	}
	if k, err := ParseKind("Series"); err != nil || k != KindSeries {
		t.Errorf("ParseKind(Series) = %v, %v", k, err)
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("unknown kind parsed")
	}
	if p, err := ParseReplacementPolicy("fifo"); err != nil || p != FIFO {
		t.Errorf("ParseReplacementPolicy(fifo) = %v, %v", p, err)
	}
	if _, err := ParseReplacementPolicy("nope"); err == nil {
		t.Error("unknown policy parsed")
	}
}

// TestFlagTextVar exercises the integration the CLIs rely on: enum values
// bound with flag.TextVar parse flexible spellings and reject junk.
func TestFlagTextVar(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	m := SC
	k := KindVector
	p := LRU
	fs.TextVar(&m, "method", m, "")
	fs.TextVar(&k, "kind", k, "")
	fs.TextVar(&p, "policy", p, "")
	if err := fs.Parse([]string{"-method", "pm-nlj", "-kind", "STRING", "-policy", "Fifo"}); err != nil {
		t.Fatal(err)
	}
	if m != PMNLJ || k != KindString || p != FIFO {
		t.Fatalf("parsed %v/%v/%v", m, k, p)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	fs2.SetOutput(discard{})
	m2 := SC
	fs2.TextVar(&m2, "method", m2, "")
	if err := fs2.Parse([]string{"-method", "bogus"}); err == nil {
		t.Fatal("bogus method accepted by flag parsing")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestEnumSpecTable pins every enum against its full canonical name table:
// String/MarshalText produce the canonical spelling for each value, Parse
// accepts case- and separator-insensitive variants, out-of-range values
// refuse to marshal (and String falls back to Type(n)), junk refuses to
// parse, and the empty string parses to the zero value exactly for the mode
// enums that treat "" as Default.
func TestEnumSpecTable(t *testing.T) {
	type enum struct {
		typeName   string
		names      []string
		allowEmpty bool
		str        func(int) string
		marshal    func(int) (string, error)
		parse      func(string) (int, error)
	}
	enums := []enum{
		{"Method", []string{"NLJ", "pm-NLJ", "random-SC", "SC", "CC", "EGO", "BFRJ", "PBSM"}, false,
			func(i int) string { return Method(i).String() },
			func(i int) (string, error) { b, err := Method(i).MarshalText(); return string(b), err },
			func(s string) (int, error) { v, err := ParseMethod(s); return int(v), err }},
		{"Kind", []string{"vector", "series", "string"}, false,
			func(i int) string { return Kind(i).String() },
			func(i int) (string, error) { b, err := Kind(i).MarshalText(); return string(b), err },
			func(s string) (int, error) { v, err := ParseKind(s); return int(v), err }},
		{"ReplacementPolicy", []string{"LRU", "FIFO"}, false,
			func(i int) string { return ReplacementPolicy(i).String() },
			func(i int) (string, error) { b, err := ReplacementPolicy(i).MarshalText(); return string(b), err },
			func(s string) (int, error) { v, err := ParseReplacementPolicy(s); return int(v), err }},
		{"KernelMode", []string{"default", "on", "off"}, true,
			func(i int) string { return KernelMode(i).String() },
			func(i int) (string, error) { b, err := KernelMode(i).MarshalText(); return string(b), err },
			func(s string) (int, error) { v, err := ParseKernelMode(s); return int(v), err }},
		{"PrefetchMode", []string{"default", "on", "off"}, true,
			func(i int) string { return PrefetchMode(i).String() },
			func(i int) (string, error) { b, err := PrefetchMode(i).MarshalText(); return string(b), err },
			func(s string) (int, error) { v, err := ParsePrefetchMode(s); return int(v), err }},
	}
	for _, e := range enums {
		t.Run(e.typeName, func(t *testing.T) {
			for i, name := range e.names {
				if got := e.str(i); got != name {
					t.Errorf("String(%d) = %q, want %q", i, got, name)
				}
				got, err := e.marshal(i)
				if err != nil || got != name {
					t.Errorf("MarshalText(%d) = %q, %v, want %q", i, got, err, name)
				}
				for _, sp := range []string{
					name,
					strings.ToUpper(name),
					strings.ToLower(name),
					strings.ReplaceAll(name, "-", "_"),
					" " + name + " ",
				} {
					v, err := e.parse(sp)
					if err != nil || v != i {
						t.Errorf("parse(%q) = %d, %v, want %d", sp, v, err, i)
					}
				}
			}
			for _, bad := range []int{-1, len(e.names)} {
				if _, err := e.marshal(bad); err == nil {
					t.Errorf("MarshalText(%d) succeeded for out-of-range value", bad)
				}
			}
			if got, want := e.str(len(e.names)), fmt.Sprintf("%s(%d)", e.typeName, len(e.names)); got != want {
				t.Errorf("out-of-range String = %q, want %q", got, want)
			}
			if _, err := e.parse("bogus"); err == nil {
				t.Error("junk parsed")
			}
			v, err := e.parse("")
			if e.allowEmpty {
				if err != nil || v != 0 {
					t.Errorf("parse(\"\") = %d, %v, want zero value", v, err)
				}
			} else if err == nil {
				t.Error("empty string parsed for an enum without an empty form")
			}
		})
	}
}

// TestOptionsValidateGrouped covers the grouped sub-structs and their flat
// deprecated aliases: adoption in both directions, mirrored fields after
// Validate, conflict rejection, and the sharding field checks.
func TestOptionsValidateGrouped(t *testing.T) {
	base := Options{Method: SC, Epsilon: 0.1, BufferPages: 8}

	t.Run("flat prefetch adopted into Pipeline", func(t *testing.T) {
		o := base
		o.Prefetch = PrefetchOff
		o.PrefetchDepth = 7
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.Pipeline.Prefetch != PrefetchOff || o.Pipeline.PrefetchDepth != 7 {
			t.Errorf("Pipeline = %+v, want deprecated fields adopted", o.Pipeline)
		}
	})
	t.Run("Pipeline mirrored back to flat aliases", func(t *testing.T) {
		o := base
		o.Pipeline = PipelineOptions{Prefetch: PrefetchOff, PrefetchDepth: 3}
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.Prefetch != PrefetchOff || o.PrefetchDepth != 3 {
			t.Errorf("flat aliases %v/%d not mirrored from Pipeline", o.Prefetch, o.PrefetchDepth)
		}
	})
	t.Run("agreeing flat and grouped accepted", func(t *testing.T) {
		o := base
		o.Prefetch = PrefetchOn
		o.Pipeline.Prefetch = PrefetchOn
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("sharding workers default", func(t *testing.T) {
		o := base
		o.Sharding.Shards = 3
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		want := 3
		if g := runtime.GOMAXPROCS(0); g < want {
			want = g
		}
		if o.Sharding.Workers != want {
			t.Errorf("Sharding.Workers = %d, want %d", o.Sharding.Workers, want)
		}
		// Idempotent across the grouped fields too.
		before := o
		if err := o.Validate(); err != nil {
			t.Fatal(err)
		}
		if o != before {
			t.Errorf("Validate not idempotent: %+v vs %+v", o, before)
		}
	})

	rejects := []struct {
		name string
		mut  func(*Options)
	}{
		{"conflicting prefetch modes", func(o *Options) { o.Prefetch = PrefetchOn; o.Pipeline.Prefetch = PrefetchOff }},
		{"conflicting prefetch depths", func(o *Options) { o.PrefetchDepth = 2; o.Pipeline.PrefetchDepth = 3 }},
		{"negative flat prefetch depth", func(o *Options) { o.PrefetchDepth = -1 }},
		{"negative grouped prefetch depth", func(o *Options) { o.Pipeline.PrefetchDepth = -1 }},
		{"negative shards", func(o *Options) { o.Sharding.Shards = -1 }},
		{"negative shard workers", func(o *Options) { o.Sharding.Shards = 2; o.Sharding.Workers = -3 }},
		{"workers without shards", func(o *Options) { o.Sharding.Workers = 2 }},
		{"sharding an unclustered method", func(o *Options) { o.Method = NLJ; o.Sharding.Shards = 2 }},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mut(&o)
			if err := o.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", o)
			}
		})
	}
}
