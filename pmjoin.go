// Package pmjoin is a buffer-aware similarity-join library for massive
// spatial and sequence datasets, reproducing Kahveci, Lang & Singh,
// "Joining Massive High-Dimensional Datasets" (ICDE 2003).
//
// The library joins two datasets under a distance threshold ε while
// minimizing disk I/O. It builds a boolean prediction matrix over the page
// pairs of the datasets using a lower-bounding distance predictor, clusters
// the marked entries into buffer-sized groups (square clustering SC or
// cost-based clustering CC), schedules the clusters to maximize buffer
// reuse, and joins one cluster at a time entirely in memory. Block nested
// loop join (NLJ), prediction-matrix NLJ (pm-NLJ), epsilon grid ordering
// (EGO) and breadth-first R-tree join (BFRJ) are provided as comparators.
//
// Three data kinds are supported, mirroring Table 1 of the paper:
//
//   - Vector data (points, spatial objects, feature vectors), indexed with
//     an R*-tree, joined under an Lp norm.
//   - Time-series data, indexed with an MR-index over sliding windows,
//     subsequence-joined under L2.
//   - String data, indexed with an MRS-index over sliding windows,
//     subsequence-joined under edit distance with the frequency distance as
//     the lower-bounding predictor.
//
// All I/O runs against a simulated linear-model disk with an LRU buffer, so
// costs are deterministic and hardware independent; see DESIGN.md.
package pmjoin

import (
	"fmt"
	"sync"

	"pmjoin/internal/disk"
	"pmjoin/internal/geom"
	"pmjoin/internal/index"
	"pmjoin/internal/join"
	"pmjoin/internal/mrindex"
	"pmjoin/internal/mrsindex"
	"pmjoin/internal/predmat"
	"pmjoin/internal/rstar"
	"pmjoin/internal/seqdist"
	"pmjoin/internal/sflight"
	"pmjoin/internal/store"
)

// Kind identifies the data kind of a dataset.
type Kind int

const (
	// KindVector is point/spatial/high-dimensional feature data.
	KindVector Kind = iota
	// KindSeries is time-series data joined by subsequence.
	KindSeries
	// KindString is string data joined by subsequence under edit distance.
	KindString
)

// DiskModel is the linear disk cost model of the simulator.
type DiskModel struct {
	SeekSeconds     float64 // cost of one random seek
	TransferSeconds float64 // cost of one sequential page transfer
	PageBytes       int     // page size in bytes
	// ReadaheadPages is the largest forward gap (within one file) served by
	// streaming instead of seeking; skipped pages are charged as transfers
	// and a gap never streams when seeking would be cheaper. 0 means the
	// default (16); negative disables readahead.
	ReadaheadPages int
}

// DefaultDiskModel returns the default model (10 ms seek, 1 ms transfer,
// 4 KB pages).
func DefaultDiskModel() DiskModel {
	return DiskModel{
		SeekSeconds:     disk.DefaultSeekTime,
		TransferSeconds: disk.DefaultTransferTime,
		PageBytes:       disk.DefaultPageSize,
	}
}

// System owns the simulated disk and the datasets materialized on it.
//
// A System is safe for concurrent read-only use: any number of Join,
// JoinContext, Explain, RangeQuery and NearestNeighbors calls may run at
// once — each charges its simulated I/O to a private disk session, so every
// call's Result is identical to what a solo run would produce. Mutating
// calls (AddVectors, AddSeries, AddString, ResetIOStats) must not overlap
// with any other call.
type System struct {
	d     *disk.Disk
	model DiskModel
	// mu guards matrixCache and epoch (the only mutable state a read-only
	// call touches).
	mu sync.RWMutex
	// matrixCache memoizes prediction matrices: they depend only on the
	// dataset pair, epsilon, and filter depth, so repeated joins (e.g.
	// buffer-size sweeps) reuse them. Construction is index-only and
	// charges no simulated I/O either way. Concurrent cold-start builders
	// are deduplicated by matrixFlight: one builds, the rest wait and adopt.
	matrixCache  map[matrixKey]*matrixEntry
	matrixFlight sflight.Group[matrixKey, *matrixEntry]
	// epoch is the dataset-mutation generation: each Add* bumps it and
	// stamps the new dataset. Datasets are immutable once added, so a
	// dataset's epoch is stable; caches keyed on (epoch, file, ...) — the
	// serving layer's plan cache — stay valid for the dataset's lifetime and
	// gain an invalidation seam for future mutable backends.
	epoch int64
	// storeMu guards store, the optional file-backed page store attached by
	// UseFileStore (nil = simulator-only). Once attached it also serves as
	// the disk's write mirror, so later Add* calls land in its files too.
	storeMu sync.RWMutex
	store   *store.Store
}

type matrixKey struct {
	fileA, fileB disk.FileID
	eps          float64
	depth        int
}

type matrixEntry struct {
	m       *predmat.Matrix
	seconds float64
}

// NewSystem creates a system with the given disk model. Zero-value fields
// fall back to the defaults.
func NewSystem(model DiskModel) *System {
	def := DefaultDiskModel()
	if model.SeekSeconds == 0 {
		model.SeekSeconds = def.SeekSeconds
	}
	if model.TransferSeconds == 0 {
		model.TransferSeconds = def.TransferSeconds
	}
	if model.PageBytes == 0 {
		model.PageBytes = def.PageBytes
	}
	d := disk.New(disk.Model{
		SeekTime:     model.SeekSeconds,
		TransferTime: model.TransferSeconds,
		PageSize:     model.PageBytes,
		Readahead:    model.ReadaheadPages,
	})
	return &System{d: d, model: model, matrixCache: make(map[matrixKey]*matrixEntry)}
}

// New creates a system with the default disk model.
func New() *System { return NewSystem(DefaultDiskModel()) }

// Model returns the system's disk model.
func (s *System) Model() DiskModel { return s.model }

// ResetIOStats zeroes the simulated disk counters (datasets survive).
func (s *System) ResetIOStats() { s.d.ResetStats() }

// UseFileStore attaches a file-backed page store rooted at dir: every page
// already materialized on the simulated disk is encoded into the store's
// files, and every page added afterwards is mirrored as it is written. Joins
// run with Options.Storage = StorageFile then serve page payloads from those
// files with measured per-read wall latencies (ExecStats.MeasuredIOWall);
// Report, Pairs and Plan stay bit-identical to the simulator either way.
//
// UseFileStore must not overlap with other calls on the System (it is a
// mutating call, like Add*). Attaching twice is an error; Close the System's
// store first via CloseStore.
func (s *System) UseFileStore(dir string) error {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store != nil {
		return fmt.Errorf("pmjoin: a file store is already attached")
	}
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	if err := s.d.EachPage(st.Put); err != nil {
		st.Close()
		return fmt.Errorf("pmjoin: seeding file store: %w", err)
	}
	s.d.SetMirror(st)
	s.store = st
	return nil
}

// CloseStore detaches and closes the file store attached by UseFileStore
// (no-op when none is attached). Joins requesting StorageFile fail afterwards
// until a store is attached again. Must not overlap with running joins.
func (s *System) CloseStore() error {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store == nil {
		return nil
	}
	s.d.SetMirror(nil)
	err := s.store.Close()
	s.store = nil
	return err
}

// DropStoreCaches asks the OS to drop its page-cache copies of the attached
// store's files, so the next file-backed join measures cold reads. No-op
// without an attached store or on platforms without cache-drop advice.
func (s *System) DropStoreCaches() error {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	if s.store == nil {
		return nil
	}
	return s.store.DropCaches()
}

// fileStore returns the attached store (nil when none).
func (s *System) fileStore() *store.Store {
	s.storeMu.RLock()
	defer s.storeMu.RUnlock()
	return s.store
}

// Dataset is a dataset materialized on the system's disk, ready to join.
type Dataset struct {
	sys  *System
	kind Kind
	ds   join.Dataset

	// vector data
	dim  int
	norm geom.Norm

	// sequence data
	window   int
	stride   int
	scale    float64 // MR-index predictor scale
	features int     // MR-index PAA features
	alphabet *seqdist.Alphabet

	objects int
	epoch   int64
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.ds.Name }

// Kind returns the data kind.
func (d *Dataset) Kind() Kind { return d.kind }

// Pages returns the number of data pages on disk.
func (d *Dataset) Pages() int { return d.ds.Pages }

// Objects returns the number of joinable objects (vectors or windows).
func (d *Dataset) Objects() int { return d.objects }

// Window returns the subsequence length for sequence datasets (0 for
// vector data).
func (d *Dataset) Window() int { return d.window }

// Epoch returns the dataset's creation generation on its System: a value
// strictly increasing across Add* calls, stable for the dataset's lifetime.
// It exists so external caches (the serving layer's plan cache) can key
// cached derivations on (epoch, file, ...) and survive file-ID reuse if a
// future backend ever recycles IDs.
func (d *Dataset) Epoch() int64 { return d.epoch }

// bumpEpoch advances the dataset generation; called once per Add*.
func (s *System) bumpEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

// VectorOptions configures AddVectors.
type VectorOptions struct {
	// PageBytes overrides the system page size for this dataset (the paper
	// uses 1 KB pages for the 2-d road data and 4 KB elsewhere).
	PageBytes int
	// NormP selects the Lp norm: 1, 2, ...; -1 selects L∞. The zero value
	// means L2.
	NormP int
	// UseInsert builds the R*-tree by one-by-one R* insertion instead of
	// STR bulk loading (slower; mainly for tests and ablations).
	UseInsert bool
	// BranchFanout overrides the internal-node fanout (default 32).
	BranchFanout int
}

// AddVectors indexes dim-dimensional vectors with an R*-tree whose leaves
// are one page each, lays the vectors out page-contiguously on the
// simulated disk (§5.1), and returns the joinable dataset. Object IDs are
// the indices into vecs.
func (s *System) AddVectors(name string, vecs [][]float64, opts VectorOptions) (*Dataset, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("pmjoin: dataset %q is empty", name)
	}
	dim := len(vecs[0])
	if dim == 0 {
		return nil, fmt.Errorf("pmjoin: dataset %q has zero-dimensional vectors", name)
	}
	for i, v := range vecs {
		if len(v) != dim {
			return nil, fmt.Errorf("pmjoin: dataset %q vector %d has dim %d, want %d", name, i, len(v), dim)
		}
	}
	pageBytes := opts.PageBytes
	if pageBytes == 0 {
		pageBytes = s.model.PageBytes
	}
	perPage := pageBytes / (8*dim + 8) // 8 bytes per coordinate + object id
	if perPage < 2 {
		perPage = 2
	}
	cfg := rstar.DefaultConfig(perPage)
	if opts.BranchFanout != 0 {
		cfg.MaxBranchEntries = opts.BranchFanout
	}

	items := make([]rstar.Item, len(vecs))
	for i, v := range vecs {
		items[i] = rstar.PointItem(i, geom.Vector(v))
	}
	var tree *rstar.Tree
	var err error
	if opts.UseInsert {
		tree, err = rstar.New(dim, cfg)
		if err == nil {
			for _, it := range items {
				if err = tree.Insert(it); err != nil {
					break
				}
			}
		}
	} else {
		tree, err = rstar.BulkLoadSTR(dim, cfg, items)
	}
	if err != nil {
		return nil, fmt.Errorf("pmjoin: indexing %q: %w", name, err)
	}

	pages := tree.Pack()
	file := s.d.CreateFile()
	for _, pg := range pages {
		payload := &join.VectorPage{
			IDs:  make([]int, len(pg)),
			Vecs: make([]geom.Vector, len(pg)),
		}
		for i, it := range pg {
			payload.IDs[i] = it.ID
			payload.Vecs[i] = it.MBR.Min // points: Min == Max
		}
		if _, err := s.d.AppendPage(file, payload); err != nil {
			return nil, err
		}
	}

	norm := geom.Norm{P: opts.NormP}
	if opts.NormP == 0 {
		norm = geom.L2
	}
	if opts.NormP == -1 { // explicit L∞ request
		norm = geom.LInf
	}
	return &Dataset{
		sys:     s,
		kind:    KindVector,
		ds:      join.Dataset{Name: name, File: file, Root: tree.Root(), Pages: len(pages)},
		dim:     dim,
		norm:    norm,
		objects: len(vecs),
		epoch:   s.bumpEpoch(),
	}, nil
}

// SeriesOptions configures AddSeries.
type SeriesOptions struct {
	// Window is the subsequence length w of the subsequence join (required).
	Window int
	// Stride between window starts (default 1).
	Stride int
	// Features is the MR-index PAA dimensionality (default 8).
	Features int
	// PageBytes overrides the system page size.
	PageBytes int
}

// AddSeries indexes the sliding windows of a time series with an MR-index
// and lays the samples out page-contiguously. Window IDs number the windows
// in position order.
func (s *System) AddSeries(name string, series []float64, opts SeriesOptions) (*Dataset, error) {
	pageBytes := opts.PageBytes
	if pageBytes == 0 {
		pageBytes = s.model.PageBytes
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 1
	}
	cfg := mrindex.Config{
		Window:      opts.Window,
		Stride:      stride,
		Features:    opts.Features,
		PageSamples: pageBytes / 8,
	}
	ix, err := mrindex.Build(series, cfg)
	if err != nil {
		return nil, fmt.Errorf("pmjoin: indexing %q: %w", name, err)
	}
	file := s.d.CreateFile()
	for p := 0; p < ix.NumPages(); p++ {
		ids, starts, windows := ix.PageWindows(p)
		if _, err := s.d.AppendPage(file, &join.SeriesPage{IDs: ids, Starts: starts, Windows: windows}); err != nil {
			return nil, err
		}
	}
	return &Dataset{
		sys:      s,
		kind:     KindSeries,
		ds:       join.Dataset{Name: name, File: file, Root: ix.Root(), Pages: ix.NumPages()},
		window:   ix.Config().Window,
		stride:   ix.Config().Stride,
		scale:    ix.Scale(),
		features: ix.Config().Features,
		objects:  ix.NumWindows(),
		epoch:    s.bumpEpoch(),
	}, nil
}

// StringOptions configures AddString.
type StringOptions struct {
	// Window is the subsequence length w of the subsequence join (required).
	Window int
	// Stride between window starts (default 1).
	Stride int
	// Alphabet lists the symbols (default "ACGT").
	Alphabet string
	// PageBytes overrides the system page size.
	PageBytes int
}

// AddString indexes the sliding windows of a string with an MRS-index and
// lays the characters out page-contiguously. Window IDs number the windows
// in position order.
func (s *System) AddString(name string, seq []byte, opts StringOptions) (*Dataset, error) {
	pageBytes := opts.PageBytes
	if pageBytes == 0 {
		pageBytes = s.model.PageBytes
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 1
	}
	alpha := seqdist.DNA
	if opts.Alphabet != "" {
		var err error
		alpha, err = seqdist.NewAlphabet(opts.Alphabet)
		if err != nil {
			return nil, fmt.Errorf("pmjoin: dataset %q: %w", name, err)
		}
	}
	cfg := mrsindex.Config{
		Window:    opts.Window,
		Stride:    stride,
		PageBytes: pageBytes,
	}
	ix, err := mrsindex.Build(seq, alpha, cfg)
	if err != nil {
		return nil, fmt.Errorf("pmjoin: indexing %q: %w", name, err)
	}
	file := s.d.CreateFile()
	for p := 0; p < ix.NumPages(); p++ {
		ids, starts, windows, freqs := ix.PageWindows(p)
		if _, err := s.d.AppendPage(file, &join.StringPage{IDs: ids, Starts: starts, Windows: windows, Freqs: freqs}); err != nil {
			return nil, err
		}
	}
	return &Dataset{
		sys:      s,
		kind:     KindString,
		ds:       join.Dataset{Name: name, File: file, Root: ix.Root(), Pages: ix.NumPages()},
		window:   ix.Config().Window,
		stride:   ix.Config().Stride,
		alphabet: alpha,
		objects:  ix.NumWindows(),
		epoch:    s.bumpEpoch(),
	}, nil
}

// root exposes the dataset's MBR hierarchy for tests in this package.
func (d *Dataset) root() *index.Node { return d.ds.Root }
