package pmjoin

import (
	"strings"
	"testing"

	"pmjoin/internal/dataset"
)

func smallVecSystem(t *testing.T) (*System, *Dataset, *Dataset) {
	t.Helper()
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(200, 2, 20), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(150, 2, 21), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, da, db
}

func TestNewSystemDefaults(t *testing.T) {
	sys := New()
	m := sys.Model()
	def := DefaultDiskModel()
	if m != def {
		t.Fatalf("model = %+v", m)
	}
	sys2 := NewSystem(DiskModel{PageBytes: 1024})
	if sys2.Model().PageBytes != 1024 || sys2.Model().SeekSeconds != def.SeekSeconds {
		t.Fatal("partial model not defaulted")
	}
}

func TestAddVectorsValidation(t *testing.T) {
	sys := New()
	if _, err := sys.AddVectors("e", nil, VectorOptions{}); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := sys.AddVectors("z", [][]float64{{}}, VectorOptions{}); err == nil {
		t.Fatal("zero-dim accepted")
	}
	if _, err := sys.AddVectors("m", [][]float64{{1, 2}, {1}}, VectorOptions{}); err == nil {
		t.Fatal("ragged accepted")
	}
}

func TestAddVectorsInsertPath(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("ins", randomVecs(120, 2, 22), VectorOptions{UseInsert: true})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("str", randomVecs(120, 2, 22), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Same data indexed two ways must join identically.
	r1, err := sys.Join(da, da, Options{Method: SC, Epsilon: 0.05, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Join(db, db, Options{Method: SC, Epsilon: 0.05, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count() != r2.Count() {
		t.Fatalf("insert-built %d vs STR-built %d", r1.Count(), r2.Count())
	}
}

func TestAddSeriesAndStringValidation(t *testing.T) {
	sys := New()
	if _, err := sys.AddSeries("s", []float64{1, 2}, SeriesOptions{Window: 10}); err == nil {
		t.Fatal("short series accepted")
	}
	if _, err := sys.AddString("q", []byte("AC"), StringOptions{Window: 10}); err == nil {
		t.Fatal("short string accepted")
	}
	if _, err := sys.AddString("q", []byte("ACGTACGTACGT"), StringOptions{Window: 4, Alphabet: "AA"}); err == nil {
		t.Fatal("bad alphabet accepted")
	}
}

func TestJoinOptionValidation(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	if _, err := sys.Join(da, db, Options{Method: SC, Epsilon: 0.1, BufferPages: 2}); err == nil {
		t.Fatal("tiny buffer accepted")
	}
	if _, err := sys.Join(da, db, Options{Method: SC, Epsilon: -1, BufferPages: 8}); err == nil {
		t.Fatal("negative epsilon accepted")
	}
	if _, err := sys.Join(da, db, Options{Method: Method(99), Epsilon: 0.1, BufferPages: 8}); err == nil {
		t.Fatal("unknown method accepted")
	}
	other := New()
	dc, err := other.AddVectors("c", randomVecs(50, 2, 23), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(da, dc, Options{Method: SC, Epsilon: 0.1, BufferPages: 8}); err == nil {
		t.Fatal("cross-system join accepted")
	}
	s := dataset.RandomWalk(2000, 1)
	ds, err := sys.AddSeries("walk", s, SeriesOptions{Window: 16, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Join(da, ds, Options{Method: SC, Epsilon: 0.1, BufferPages: 8}); err == nil {
		t.Fatal("cross-kind join accepted")
	}
	if _, err := sys.Join(ds, ds, Options{Method: PBSM, Epsilon: 1, BufferPages: 8}); err == nil {
		t.Fatal("PBSM on sequence data accepted")
	}
}

func TestJoinDimensionMismatch(t *testing.T) {
	sys := New()
	da, _ := sys.AddVectors("d2", randomVecs(64, 2, 1), VectorOptions{})
	db, _ := sys.AddVectors("d3", randomVecs(64, 3, 1), VectorOptions{})
	if _, err := sys.Join(da, db, Options{Method: NLJ, Epsilon: 0.1, BufferPages: 8}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestWindowMismatch(t *testing.T) {
	sys := New()
	s := dataset.RandomWalk(4000, 2)
	a, _ := sys.AddSeries("a", s, SeriesOptions{Window: 16, Stride: 4})
	b, _ := sys.AddSeries("b", s, SeriesOptions{Window: 32, Stride: 4})
	if _, err := sys.Join(a, b, Options{Method: NLJ, Epsilon: 1, BufferPages: 8}); err == nil {
		t.Fatal("window mismatch accepted")
	}
}

func TestCollectPairsAndTruncation(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	res, err := sys.Join(da, db, Options{
		Method: NLJ, Epsilon: 0.2, BufferPages: 8, CollectPairs: true, MaxPairs: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() <= 5 {
		t.Skip("workload too sparse for truncation test")
	}
	if len(res.Pairs) != 5 || !res.Truncated {
		t.Fatalf("pairs = %d truncated = %v", len(res.Pairs), res.Truncated)
	}
}

func TestFIFOPolicyProducesSameResults(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	lru, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: 0.1, BufferPages: 8, Policy: LRU})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: 0.1, BufferPages: 8, Policy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	if lru.Count() != fifo.Count() {
		t.Fatalf("policy changed results: %d vs %d", lru.Count(), fifo.Count())
	}
}

func TestResultAccessors(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	res, err := sys.Join(da, db, Options{Method: SC, Epsilon: 0.1, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds() != res.Report.Total() {
		t.Fatal("TotalSeconds mismatch")
	}
	if res.MarkedEntries == 0 || res.MatrixDensity <= 0 {
		t.Fatal("matrix stats missing")
	}
	if res.MatrixSeconds <= 0 {
		t.Fatal("matrix seconds missing")
	}
}

func TestMethodAndKindStrings(t *testing.T) {
	names := []string{NLJ.String(), PMNLJ.String(), RandomSC.String(), SC.String(),
		CC.String(), EGO.String(), BFRJ.String(), PBSM.String()}
	joined := strings.Join(names, ",")
	if joined != "NLJ,pm-NLJ,random-SC,SC,CC,EGO,BFRJ,PBSM" {
		t.Fatalf("method names: %s", joined)
	}
	if Method(42).String() == "" || Kind(42).String() == "" {
		t.Fatal("unknown enums must still print")
	}
	if KindVector.String() != "vector" || KindSeries.String() != "series" || KindString.String() != "string" {
		t.Fatal("kind names")
	}
}

func TestDatasetAccessors(t *testing.T) {
	sys := New()
	s := dataset.RandomWalk(4000, 3)
	ds, err := sys.AddSeries("walk", s, SeriesOptions{Window: 16, Stride: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "walk" || ds.Kind() != KindSeries || ds.Window() != 16 {
		t.Fatal("accessors")
	}
	if ds.Pages() == 0 || ds.Objects() == 0 {
		t.Fatal("size accessors")
	}
	if err := ds.root().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateEpsilon(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	eps, err := sys.CalibrateEpsilon(da, db, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: eps, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MatrixDensity < 0.01 || res.MatrixDensity > 0.25 {
		t.Fatalf("calibrated density = %g, want near 0.05", res.MatrixDensity)
	}
}

func TestCalibrateEpsilonErrors(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	if _, err := sys.CalibrateEpsilon(da, db, 0); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := sys.CalibrateEpsilon(da, db, 1); err == nil {
		t.Fatal("target 1 accepted")
	}
	s := dataset.RandomWalk(2000, 4)
	ds, _ := sys.AddSeries("w", s, SeriesOptions{Window: 16, Stride: 4})
	if _, err := sys.CalibrateEpsilon(da, ds, 0.1); err == nil {
		t.Fatal("cross-kind calibration accepted")
	}
}

func TestResetIOStats(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	if _, err := sys.Join(da, db, Options{Method: NLJ, Epsilon: 0.05, BufferPages: 8}); err != nil {
		t.Fatal(err)
	}
	sys.ResetIOStats()
	res, err := sys.Join(da, db, Options{Method: NLJ, Epsilon: 0.05, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IOSeconds <= 0 {
		t.Fatal("reset broke accounting")
	}
}

func TestLInfNorm(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	vecs := [][]float64{{0, 0}, {0.05, 0.09}, {0.5, 0.5}}
	for len(vecs) < 64 {
		vecs = append(vecs, []float64{float64(len(vecs)), float64(len(vecs))})
	}
	da, err := sys.AddVectors("linf", vecs, VectorOptions{NormP: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(da, da, Options{Method: NLJ, Epsilon: 0.1, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Under L-infinity, (0,0) and (0.05,0.09) are within 0.1.
	if res.Count() != 1 {
		t.Fatalf("Linf count = %d, want 1", res.Count())
	}
}

func TestL1Norm(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	vecs := [][]float64{{0, 0}, {0.05, 0.04}, {0.08, 0.07}}
	for len(vecs) < 64 {
		vecs = append(vecs, []float64{float64(len(vecs)), 0})
	}
	da, err := sys.AddVectors("l1", vecs, VectorOptions{NormP: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Join(da, da, Options{Method: SC, Epsilon: 0.1, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	// L1 pairs within 0.1: (0,0)-(0.05,0.04) = 0.09; (0.05,0.04)-(0.08,0.07) = 0.06.
	if res.Count() != 2 {
		t.Fatalf("L1 count = %d, want 2", res.Count())
	}
}

func TestMatrixCacheReuse(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	const eps = 0.07
	r1, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: eps, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A second join with the same datasets and epsilon must reuse the
	// cached matrix: identical stats, and identical results.
	r2, err := sys.Join(da, db, Options{Method: SC, Epsilon: eps, BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MarkedEntries != r2.MarkedEntries || r1.MatrixSeconds != r2.MatrixSeconds {
		t.Fatalf("cache not reused: %d/%g vs %d/%g",
			r1.MarkedEntries, r1.MatrixSeconds, r2.MarkedEntries, r2.MatrixSeconds)
	}
	if r1.Count() != r2.Count() {
		t.Fatalf("results differ: %d vs %d", r1.Count(), r2.Count())
	}
	// A different epsilon must not hit the cache.
	r3, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: eps * 2, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r3.MarkedEntries <= r1.MarkedEntries {
		t.Fatalf("larger epsilon should mark more: %d vs %d", r3.MarkedEntries, r1.MarkedEntries)
	}
	// FilterDepth is part of the key: disabling the filter must still give
	// the same matrix content (Theorem 1 invariance) via a fresh build.
	r4, err := sys.Join(da, db, Options{Method: PMNLJ, Epsilon: eps, BufferPages: 8, FilterDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	if r4.MarkedEntries != r1.MarkedEntries {
		t.Fatalf("filter changed matrix: %d vs %d", r4.MarkedEntries, r1.MarkedEntries)
	}
}
