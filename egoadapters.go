package pmjoin

import (
	"math"

	"pmjoin/internal/ego"
	"pmjoin/internal/geom"
	"pmjoin/internal/join"
	"pmjoin/internal/kernel"
	"pmjoin/internal/mrindex"
	"pmjoin/internal/seqdist"
)

// Modeled CPU costs of one EGO candidate verification, mirroring the join
// package's comparison model.
const (
	egoBaseCost   = 10e-9
	egoPerDimCost = 5e-9
	egoEditCell   = 2e-9
)

// vectorEGO adapts vector pages to the EGO join: grid cells of width eps,
// exact verification under the norm.
type vectorEGO struct {
	norm geom.Norm
	eps  float64
	cell float64
	self bool
	// kernels switches Compare to the precompiled threshold test, which is
	// bit-identical to norm.Dist(a, b) <= eps (see internal/kernel).
	kernels bool
	th      kernel.Threshold
}

func (v *vectorEGO) NumObjects(p any) int { return len(p.(*join.VectorPage).IDs) }

func (v *vectorEGO) ObjectID(p any, i int) int { return p.(*join.VectorPage).IDs[i] }

func (v *vectorEGO) GridKey(p any, i int) []int {
	vec := p.(*join.VectorPage).Vecs[i]
	key := make([]int, len(vec))
	for d, x := range vec {
		key[d] = int(math.Floor(x / v.cell))
	}
	return key
}

func (v *vectorEGO) Compare(pa any, i int, pb any, k int) (bool, float64) {
	a := pa.(*join.VectorPage)
	b := pb.(*join.VectorPage)
	cost := egoBaseCost + egoPerDimCost*float64(len(a.Vecs[i]))
	if v.kernels {
		return v.th.Within(a.Vecs[i], b.Vecs[k]), cost
	}
	return v.norm.Dist(a.Vecs[i], b.Vecs[k]) <= v.eps, cost
}

func (v *vectorEGO) SelfSkip(pa any, i int, pb any, k int) bool {
	return v.self && pa.(*join.VectorPage).IDs[i] >= pb.(*join.VectorPage).IDs[k]
}

func (v *vectorEGO) Repage(objs []ego.ObjectRef, fetch func(int) (any, error)) (any, error) {
	out := &join.VectorPage{
		IDs:  make([]int, 0, len(objs)),
		Vecs: make([]geom.Vector, 0, len(objs)),
	}
	for _, o := range objs {
		p, err := fetch(o.Page)
		if err != nil {
			return nil, err
		}
		vp := p.(*join.VectorPage)
		out.IDs = append(out.IDs, vp.IDs[o.Slot])
		out.Vecs = append(out.Vecs, vp.Vecs[o.Slot])
	}
	return out, nil
}

func (v *vectorEGO) Reorderable() bool { return true }

// seriesEGO adapts time-series window pages: grid keys from PAA features
// with cell width eps/scale; exact verification under raw L2. Sequence data
// cannot be reordered on disk, so Reorderable is false and the sweep pays
// random seeks to the windows' home pages (§2.1, §9.2).
type seriesEGO struct {
	eps      float64
	cell     float64
	self     bool
	window   int
	features int
	// kernels switches Compare to the precompiled squared-L2 test, matching
	// the inline epsSq loop bit for bit.
	kernels bool
	th      kernel.Threshold
}

func (s *seriesEGO) NumObjects(p any) int { return len(p.(*join.SeriesPage).IDs) }

func (s *seriesEGO) ObjectID(p any, i int) int { return p.(*join.SeriesPage).IDs[i] }

func (s *seriesEGO) GridKey(p any, i int) []int {
	feat := mrindex.PAA(p.(*join.SeriesPage).Windows[i], s.features)
	key := make([]int, len(feat))
	for d, x := range feat {
		key[d] = int(math.Floor(x / s.cell))
	}
	return key
}

func (s *seriesEGO) Compare(pa any, i int, pb any, k int) (bool, float64) {
	a := pa.(*join.SeriesPage)
	b := pb.(*join.SeriesPage)
	wa, wb := a.Windows[i], b.Windows[k]
	cost := egoBaseCost + egoPerDimCost*float64(len(wa))
	if s.kernels {
		return s.th.Within(wa, wb), cost
	}
	epsSq := s.eps * s.eps
	var sum float64
	for x := range wa {
		d := wa[x] - wb[x]
		sum += d * d
		if sum > epsSq {
			return false, cost
		}
	}
	return true, cost
}

func (s *seriesEGO) SelfSkip(pa any, i int, pb any, k int) bool {
	if !s.self {
		return false
	}
	a := pa.(*join.SeriesPage)
	b := pb.(*join.SeriesPage)
	if a.IDs[i] >= b.IDs[k] {
		return true
	}
	d := a.Starts[i] - b.Starts[k]
	if d < 0 {
		d = -d
	}
	return d < s.window
}

func (s *seriesEGO) Repage([]ego.ObjectRef, func(int) (any, error)) (any, error) {
	panic("pmjoin: series data cannot be reordered")
}

func (s *seriesEGO) Reorderable() bool { return false }

// stringEGO adapts string window pages: grid keys from frequency vectors
// with integer cell width maxEdit; verification via frequency distance then
// banded edit distance. Not reorderable (§2.1).
type stringEGO struct {
	maxEdit int
	cell    int
	self    bool
	window  int
}

func (s *stringEGO) NumObjects(p any) int { return len(p.(*join.StringPage).IDs) }

func (s *stringEGO) ObjectID(p any, i int) int { return p.(*join.StringPage).IDs[i] }

func (s *stringEGO) GridKey(p any, i int) []int {
	f := p.(*join.StringPage).Freqs[i]
	key := make([]int, len(f))
	for d, x := range f {
		key[d] = x / s.cell
	}
	return key
}

func (s *stringEGO) Compare(pa any, i int, pb any, k int) (bool, float64) {
	a := pa.(*join.StringPage)
	b := pb.(*join.StringPage)
	cost := egoBaseCost + egoPerDimCost*float64(len(a.Freqs[i]))
	if seqdist.FreqDistance(a.Freqs[i], b.Freqs[k]) > s.maxEdit {
		return false, cost
	}
	cost += float64(2*s.maxEdit+1) * float64(len(a.Windows[i])) * egoEditCell
	_, ok := seqdist.EditDistanceBounded(a.Windows[i], b.Windows[k], s.maxEdit)
	return ok, cost
}

func (s *stringEGO) SelfSkip(pa any, i int, pb any, k int) bool {
	if !s.self {
		return false
	}
	a := pa.(*join.StringPage)
	b := pb.(*join.StringPage)
	if a.IDs[i] >= b.IDs[k] {
		return true
	}
	d := a.Starts[i] - b.Starts[k]
	if d < 0 {
		d = -d
	}
	return d < s.window
}

func (s *stringEGO) Repage([]ego.ObjectRef, func(int) (any, error)) (any, error) {
	panic("pmjoin: string data cannot be reordered")
}

func (s *stringEGO) Reorderable() bool { return false }
