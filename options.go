package pmjoin

import (
	"fmt"
	"runtime"
	"strings"
)

// Method selects the join algorithm.
type Method int

const (
	// NLJ is block nested loop join (the no-information baseline, §2.1).
	NLJ Method = iota
	// PMNLJ restricts NLJ to the marked prediction-matrix entries (§6).
	PMNLJ
	// RandomSC is square clustering with clusters processed in random
	// order (isolates the scheduling optimization, §9.1).
	RandomSC
	// SC is square clustering with greedy sharing-graph scheduling — the
	// paper's primary technique (§7.1, §8).
	SC
	// CC is cost-based clustering with greedy scheduling, the approximate
	// I/O lower bound (§7.2).
	CC
	// EGO is the epsilon grid ordering join baseline (§9).
	EGO
	// BFRJ is the breadth-first R-tree join baseline (§9).
	BFRJ
	// PBSM is the Partition Based Spatial-Merge join of Patel & DeWitt,
	// surveyed in §2.1 — an extension baseline beyond the paper's
	// evaluation, available for vector data only.
	PBSM
)

func (m Method) String() string {
	switch m {
	case NLJ:
		return "NLJ"
	case PMNLJ:
		return "pm-NLJ"
	case RandomSC:
		return "random-SC"
	case SC:
		return "SC"
	case CC:
		return "CC"
	case EGO:
		return "EGO"
	case BFRJ:
		return "BFRJ"
	case PBSM:
		return "PBSM"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// MarshalText implements encoding.TextMarshaler; the text form is the
// canonical name ("SC", "pm-NLJ", ...).
func (m Method) MarshalText() ([]byte, error) {
	if m < NLJ || m > PBSM {
		return nil, fmt.Errorf("pmjoin: unknown method %d", int(m))
	}
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParseMethod.
func (m *Method) UnmarshalText(text []byte) error {
	v, err := ParseMethod(string(text))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseMethod parses a method name. Matching is case-insensitive and
// ignores hyphens, so "pm-NLJ", "pmnlj" and "PM-nlj" all parse to PMNLJ.
func ParseMethod(s string) (Method, error) {
	switch normalizeEnum(s) {
	case "nlj":
		return NLJ, nil
	case "pmnlj":
		return PMNLJ, nil
	case "randomsc":
		return RandomSC, nil
	case "sc":
		return SC, nil
	case "cc":
		return CC, nil
	case "ego":
		return EGO, nil
	case "bfrj":
		return BFRJ, nil
	case "pbsm":
		return PBSM, nil
	}
	return 0, fmt.Errorf("pmjoin: unknown method %q (want NLJ, pm-NLJ, random-SC, SC, CC, EGO, BFRJ or PBSM)", s)
}

// MarshalText implements encoding.TextMarshaler; the text form is the
// canonical name ("vector", "series", "string").
func (k Kind) MarshalText() ([]byte, error) {
	if k < KindVector || k > KindString {
		return nil, fmt.Errorf("pmjoin: unknown kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParseKind.
func (k *Kind) UnmarshalText(text []byte) error {
	v, err := ParseKind(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseKind parses a data-kind name (case-insensitive).
func ParseKind(s string) (Kind, error) {
	switch normalizeEnum(s) {
	case "vector":
		return KindVector, nil
	case "series":
		return KindSeries, nil
	case "string":
		return KindString, nil
	}
	return 0, fmt.Errorf("pmjoin: unknown kind %q (want vector, series or string)", s)
}

// ReplacementPolicy selects the buffer replacement policy.
type ReplacementPolicy int

const (
	// LRU is the paper's default policy.
	LRU ReplacementPolicy = iota
	// FIFO is provided for the replacement ablation.
	FIFO
)

func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// MarshalText implements encoding.TextMarshaler.
func (p ReplacementPolicy) MarshalText() ([]byte, error) {
	if p < LRU || p > FIFO {
		return nil, fmt.Errorf("pmjoin: unknown replacement policy %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see
// ParseReplacementPolicy.
func (p *ReplacementPolicy) UnmarshalText(text []byte) error {
	v, err := ParseReplacementPolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParseReplacementPolicy parses a policy name (case-insensitive).
func ParseReplacementPolicy(s string) (ReplacementPolicy, error) {
	switch normalizeEnum(s) {
	case "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	}
	return 0, fmt.Errorf("pmjoin: unknown replacement policy %q (want LRU or FIFO)", s)
}

// KernelMode selects whether joins use the threshold-aware distance kernels
// of internal/kernel for their CPU hot path. The kernels are exact: Report,
// Pairs and Plan are bit-identical in either mode, so the knob only exists
// as an escape hatch and for differential testing.
type KernelMode int

const (
	// KernelsDefault resolves to KernelsOn in Validate.
	KernelsDefault KernelMode = iota
	// KernelsOn uses the allocation-free early-exiting kernels (default).
	KernelsOn
	// KernelsOff keeps the reference comparison loops.
	KernelsOff
)

func (k KernelMode) String() string {
	switch k {
	case KernelsDefault:
		return "default"
	case KernelsOn:
		return "on"
	case KernelsOff:
		return "off"
	default:
		return fmt.Sprintf("KernelMode(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler.
func (k KernelMode) MarshalText() ([]byte, error) {
	if k < KernelsDefault || k > KernelsOff {
		return nil, fmt.Errorf("pmjoin: unknown kernel mode %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParseKernelMode.
func (k *KernelMode) UnmarshalText(text []byte) error {
	v, err := ParseKernelMode(string(text))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseKernelMode parses a kernel mode name (case-insensitive).
func ParseKernelMode(s string) (KernelMode, error) {
	switch normalizeEnum(s) {
	case "default", "":
		return KernelsDefault, nil
	case "on":
		return KernelsOn, nil
	case "off":
		return KernelsOff, nil
	}
	return 0, fmt.Errorf("pmjoin: unknown kernel mode %q (want on, off or default)", s)
}

// PrefetchMode selects whether clustered joins pipeline the next cluster's
// page reads behind the current cluster's CPU phase (double buffering through
// the staged-frame prefetch path). Prefetch never changes Report, Pairs or
// Plan — the staged admissions replay the exact hit/miss/eviction/read
// sequence of the unpipelined run — so the knob only exists as an escape
// hatch, for differential testing, and for the pipeline benchmark baseline.
type PrefetchMode int

const (
	// PrefetchDefault resolves to PrefetchOn in Validate.
	PrefetchDefault PrefetchMode = iota
	// PrefetchOn overlaps the successor cluster's reads with the current
	// cluster's comparisons (default; LRU policy only — FIFO runs stay
	// unpipelined silently, since FIFO insertion order is not
	// prefetch-invariant).
	PrefetchOn
	// PrefetchOff issues every read at demand time (the serial timeline).
	PrefetchOff
)

func (p PrefetchMode) String() string {
	switch p {
	case PrefetchDefault:
		return "default"
	case PrefetchOn:
		return "on"
	case PrefetchOff:
		return "off"
	default:
		return fmt.Sprintf("PrefetchMode(%d)", int(p))
	}
}

// MarshalText implements encoding.TextMarshaler.
func (p PrefetchMode) MarshalText() ([]byte, error) {
	if p < PrefetchDefault || p > PrefetchOff {
		return nil, fmt.Errorf("pmjoin: unknown prefetch mode %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParsePrefetchMode.
func (p *PrefetchMode) UnmarshalText(text []byte) error {
	v, err := ParsePrefetchMode(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePrefetchMode parses a prefetch mode name (case-insensitive).
func ParsePrefetchMode(s string) (PrefetchMode, error) {
	switch normalizeEnum(s) {
	case "default", "":
		return PrefetchDefault, nil
	case "on":
		return PrefetchOn, nil
	case "off":
		return PrefetchOff, nil
	}
	return 0, fmt.Errorf("pmjoin: unknown prefetch mode %q (want on, off or default)", s)
}

// normalizeEnum lower-cases a name and strips the separators the canonical
// spellings use, so flag values round-trip however the user hyphenates.
func normalizeEnum(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "_", "")
	return s
}

// Options configures one join execution. The zero value of every optional
// field selects its documented default; Validate (called by Join, Explain
// and their context variants) normalizes defaults in place and rejects
// out-of-range values.
type Options struct {
	Method Method
	// Epsilon is the distance threshold: an Lp distance for vector and
	// series data, a maximum edit distance for string data.
	Epsilon float64
	// BufferPages is B, the buffer size in pages (minimum 4).
	BufferPages int
	// Policy is the buffer replacement policy (default LRU).
	Policy ReplacementPolicy
	// Parallelism is the number of workers the executor may use for the
	// CPU side of the join (page-pair comparisons, plane-sweep pair tests
	// of the matrix build). 0 means GOMAXPROCS; 1 runs fully inline.
	// Results and every Report field are bit-for-bit independent of this
	// knob: I/O stays serialized in schedule order and worker results
	// merge in submission order (see DESIGN.md).
	Parallelism int
	// Seed drives the random choices of RandomSC and CC (deterministic).
	Seed int64
	// CollectPairs stores up to MaxPairs result pairs in the Result.
	CollectPairs bool
	// MaxPairs caps collected pairs. 0 means the default (100000);
	// negative values are rejected by Validate.
	MaxPairs int
	// FilterDepth bounds the prediction-matrix filter iterations
	// (default 5, the paper's k; -1 disables filtering).
	FilterDepth int
	// ClusterRowFraction is the SC buffer fraction devoted to rows
	// (default 0.5, the paper's square shape; ablation knob).
	ClusterRowFraction float64
	// HistogramBins is CC's density-histogram resolution (default 100).
	HistogramBins int
	// Metrics enables the phase-scoped metrics snapshot on Result.Metrics
	// (and Plan.Metrics for Explain). Like ExecStats, the snapshot is
	// outside the determinism contract: enabling it never changes Report,
	// Pairs or Plan. Off by default; a disabled run pays nothing.
	Metrics bool
	// Trace additionally records a bounded ring-buffer trace of typed
	// events (phase/cluster boundaries, evictions, seeks) in the snapshot.
	// Trace implies Metrics.
	Trace bool
	// TraceCapacity bounds the trace ring (default 4096 events; the ring
	// keeps the newest events and counts the overwritten ones). Negative
	// values are rejected by Validate.
	TraceCapacity int
	// Kernels selects the CPU comparison path (default on). The kernels
	// are bit-exact against the reference loops, so Report, Pairs and Plan
	// never depend on this knob; KernelsOff exists as an escape hatch and
	// for differential tests.
	Kernels KernelMode
	// Prefetch selects the pipelined cluster executor (default on): while
	// workers compare one cluster's page pairs, the coordinator stages the
	// next cluster's new pages, overlapping I/O with CPU. Report, Pairs and
	// Plan are bit-for-bit independent of this knob (the staged reads replay
	// the demand-time sequence exactly); the win is wall clock, visible in
	// ExecStats' modeled timeline and JoinWall.
	Prefetch PrefetchMode
	// PrefetchDepth bounds how many pages may be staged ahead of each
	// cluster boundary. 0 means unbounded (the whole per-step prefetch
	// plan, budget permitting); negative values are rejected by Validate.
	PrefetchDepth int
}

// Validate checks the options and normalizes defaulted fields in place:
// MaxPairs 0 becomes 100000, Parallelism 0 becomes GOMAXPROCS,
// ClusterRowFraction 0 becomes 0.5, HistogramBins 0 becomes 100, Kernels
// KernelsDefault becomes KernelsOn, and Prefetch PrefetchDefault becomes
// PrefetchOn.
// Validate is idempotent; Join, JoinContext, Explain and ExplainContext
// call it on their own copy, so mutation is only observable when calling
// it directly.
func (o *Options) Validate() error {
	if o.Method < NLJ || o.Method > PBSM {
		return fmt.Errorf("pmjoin: unknown method %v", o.Method)
	}
	if o.BufferPages < 4 {
		return fmt.Errorf("pmjoin: buffer of %d pages too small (minimum 4)", o.BufferPages)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("pmjoin: negative epsilon %g", o.Epsilon)
	}
	if o.Policy < LRU || o.Policy > FIFO {
		return fmt.Errorf("pmjoin: unknown replacement policy %v", o.Policy)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("pmjoin: negative parallelism %d", o.Parallelism)
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MaxPairs < 0 {
		return fmt.Errorf("pmjoin: negative MaxPairs %d", o.MaxPairs)
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 100000
	}
	if o.ClusterRowFraction == 0 {
		o.ClusterRowFraction = 0.5
	}
	if o.ClusterRowFraction <= 0 || o.ClusterRowFraction >= 1 {
		return fmt.Errorf("pmjoin: cluster row fraction %g outside (0,1)", o.ClusterRowFraction)
	}
	if o.HistogramBins < 0 {
		return fmt.Errorf("pmjoin: negative histogram bins %d", o.HistogramBins)
	}
	if o.HistogramBins == 0 {
		o.HistogramBins = 100
	}
	if o.TraceCapacity < 0 {
		return fmt.Errorf("pmjoin: negative trace capacity %d", o.TraceCapacity)
	}
	if o.Trace {
		o.Metrics = true
	}
	if o.Kernels < KernelsDefault || o.Kernels > KernelsOff {
		return fmt.Errorf("pmjoin: unknown kernel mode %v", o.Kernels)
	}
	if o.Kernels == KernelsDefault {
		o.Kernels = KernelsOn
	}
	if o.Prefetch < PrefetchDefault || o.Prefetch > PrefetchOff {
		return fmt.Errorf("pmjoin: unknown prefetch mode %v", o.Prefetch)
	}
	if o.Prefetch == PrefetchDefault {
		o.Prefetch = PrefetchOn
	}
	if o.PrefetchDepth < 0 {
		return fmt.Errorf("pmjoin: negative prefetch depth %d", o.PrefetchDepth)
	}
	return nil
}
