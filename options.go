package pmjoin

import (
	"fmt"
	"runtime"
)

// ShardingOptions groups the sharded-execution knobs (see internal/shard):
// the cluster schedule is cut into Shards segments along minimum-sharing
// edges and each shard runs the clustered executor over its own cold disk
// session and private buffer pool, on up to Workers concurrent shard workers.
// Sharding applies to the clustered methods (RandomSC, SC, CC) only.
type ShardingOptions struct {
	// Shards is the number of shards the planner cuts the schedule into.
	// 0 (the default) runs the regular unsharded executor. 1 routes through
	// the shard machinery with a single shard, which produces a Report,
	// Pairs and Plan bit-identical to the unsharded run — the seam
	// TestShardDeterminism pins.
	Shards int
	// Workers bounds how many shards execute concurrently; 0 means
	// min(Shards, GOMAXPROCS). Like Parallelism, Report, Pairs and Plan are
	// bit-for-bit independent of this knob: shard results merge in
	// shard-index order regardless of completion order. Each in-flight shard
	// holds its own BufferPages-frame pool, so memory scales with Workers.
	Workers int
}

// PipelineOptions groups the prefetch pipeline knobs. The flat
// Options.Prefetch / Options.PrefetchDepth fields are deprecated aliases;
// Validate reconciles the two spellings and rejects conflicting settings.
type PipelineOptions struct {
	// Prefetch selects the pipelined cluster executor (default on): while
	// workers compare one cluster's page pairs, the coordinator stages the
	// next cluster's new pages, overlapping I/O with CPU. Report, Pairs and
	// Plan are bit-for-bit independent of this knob (the staged reads replay
	// the demand-time sequence exactly); the win is wall clock, visible in
	// ExecStats' modeled timeline and JoinWall.
	Prefetch PrefetchMode
	// PrefetchDepth bounds how many pages may be staged ahead of each
	// cluster boundary. 0 means unbounded (the whole per-step prefetch
	// plan, budget permitting); negative values are rejected by Validate.
	PrefetchDepth int
}

// Options configures one join execution. The zero value of every optional
// field selects its documented default; Validate (called by Join, Explain
// and their context variants) normalizes defaults in place and rejects
// out-of-range values.
type Options struct {
	Method Method
	// Epsilon is the distance threshold: an Lp distance for vector and
	// series data, a maximum edit distance for string data.
	Epsilon float64
	// BufferPages is B, the buffer size in pages (minimum 4).
	BufferPages int
	// Policy is the buffer replacement policy (default LRU).
	Policy ReplacementPolicy
	// Parallelism is the number of workers the executor may use for the
	// CPU side of the join (page-pair comparisons, plane-sweep pair tests
	// of the matrix build). 0 means GOMAXPROCS; 1 runs fully inline.
	// Results and every Report field are bit-for-bit independent of this
	// knob: I/O stays serialized in schedule order and worker results
	// merge in submission order (see DESIGN.md).
	Parallelism int
	// Seed drives the random choices of RandomSC and CC (deterministic).
	Seed int64
	// CollectPairs stores up to MaxPairs result pairs in the Result.
	CollectPairs bool
	// MaxPairs caps collected pairs. 0 means the default (100000);
	// negative values are rejected by Validate.
	MaxPairs int
	// FilterDepth bounds the prediction-matrix filter iterations
	// (default 5, the paper's k; -1 disables filtering).
	FilterDepth int
	// ClusterRowFraction is the SC buffer fraction devoted to rows
	// (default 0.5, the paper's square shape; ablation knob).
	ClusterRowFraction float64
	// HistogramBins is CC's density-histogram resolution (default 100).
	HistogramBins int
	// Metrics enables the phase-scoped metrics snapshot on Result.Metrics
	// (and Plan.Metrics for Explain). Like ExecStats, the snapshot is
	// outside the determinism contract: enabling it never changes Report,
	// Pairs or Plan. Off by default; a disabled run pays nothing.
	Metrics bool
	// Trace additionally records a bounded ring-buffer trace of typed
	// events (phase/cluster boundaries, evictions, seeks) in the snapshot.
	// Trace implies Metrics.
	Trace bool
	// TraceCapacity bounds the trace ring (default 4096 events; the ring
	// keeps the newest events and counts the overwritten ones). Negative
	// values are rejected by Validate.
	TraceCapacity int
	// Kernels selects the CPU comparison path (default on). The kernels
	// are bit-exact against the reference loops, so Report, Pairs and Plan
	// never depend on this knob; KernelsOff exists as an escape hatch and
	// for differential tests.
	Kernels KernelMode
	// KernelBatch selects whole-cluster block dispatch for batchable
	// clustered joins (default on). Like Kernels, the batch path is
	// bit-exact: Report, Pairs and Plan never depend on this knob;
	// KernelBatchOff exists as an escape hatch and for differential tests.
	KernelBatch KernelBatchMode
	// Storage selects the physical page source (default: the in-memory
	// simulator). StorageFile requires a store attached to the System via
	// UseFileStore and serves page payloads from its real files, measuring
	// per-read wall latencies into ExecStats.MeasuredIOWall. Report, Pairs
	// and Plan are bit-for-bit independent of this knob.
	Storage StorageMode
	// Sharding selects sharded clustered execution (default: unsharded).
	Sharding ShardingOptions
	// Pipeline groups the prefetch pipeline knobs; see PipelineOptions.
	Pipeline PipelineOptions
	// Prefetch is the deprecated flat alias of Pipeline.Prefetch. Validate
	// keeps the two in sync and rejects runs that set both to different
	// modes.
	//
	// Deprecated: set Pipeline.Prefetch.
	Prefetch PrefetchMode
	// PrefetchDepth is the deprecated flat alias of Pipeline.PrefetchDepth.
	//
	// Deprecated: set Pipeline.PrefetchDepth.
	PrefetchDepth int
}

// Validate checks the options and normalizes defaulted fields in place:
// MaxPairs 0 becomes 100000, Parallelism 0 becomes GOMAXPROCS,
// ClusterRowFraction 0 becomes 0.5, HistogramBins 0 becomes 100, Kernels
// KernelsDefault becomes KernelsOn, KernelBatch KernelBatchDefault becomes
// KernelBatchOn, Pipeline.Prefetch PrefetchDefault
// becomes PrefetchOn, and Sharding.Workers 0 becomes min(Shards, GOMAXPROCS)
// when sharding. The deprecated flat Prefetch/PrefetchDepth aliases are
// reconciled with the Pipeline group: either spelling may set a knob, both
// may only agree, and after Validate the flat fields mirror the group.
// Validate is idempotent; Join, JoinContext, Explain and ExplainContext
// call it on their own copy, so mutation is only observable when calling
// it directly.
func (o *Options) Validate() error {
	if !methodSpec.valid(o.Method) {
		return fmt.Errorf("pmjoin: unknown method %v", o.Method)
	}
	if o.BufferPages < 4 {
		return fmt.Errorf("pmjoin: buffer of %d pages too small (minimum 4)", o.BufferPages)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("pmjoin: negative epsilon %g", o.Epsilon)
	}
	if !policySpec.valid(o.Policy) {
		return fmt.Errorf("pmjoin: unknown replacement policy %v", o.Policy)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("pmjoin: negative parallelism %d", o.Parallelism)
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.MaxPairs < 0 {
		return fmt.Errorf("pmjoin: negative MaxPairs %d", o.MaxPairs)
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 100000
	}
	if o.ClusterRowFraction == 0 {
		o.ClusterRowFraction = 0.5
	}
	if o.ClusterRowFraction <= 0 || o.ClusterRowFraction >= 1 {
		return fmt.Errorf("pmjoin: cluster row fraction %g outside (0,1)", o.ClusterRowFraction)
	}
	if o.HistogramBins < 0 {
		return fmt.Errorf("pmjoin: negative histogram bins %d", o.HistogramBins)
	}
	if o.HistogramBins == 0 {
		o.HistogramBins = 100
	}
	if o.TraceCapacity < 0 {
		return fmt.Errorf("pmjoin: negative trace capacity %d", o.TraceCapacity)
	}
	if o.Trace {
		o.Metrics = true
	}
	if !kernelSpec.valid(o.Kernels) {
		return fmt.Errorf("pmjoin: unknown kernel mode %v", o.Kernels)
	}
	if o.Kernels == KernelsDefault {
		o.Kernels = KernelsOn
	}
	if !kernelBatchSpec.valid(o.KernelBatch) {
		return fmt.Errorf("pmjoin: unknown kernel batch mode %v", o.KernelBatch)
	}
	if o.KernelBatch == KernelBatchDefault {
		o.KernelBatch = KernelBatchOn
	}

	// Pipeline group vs. the deprecated flat aliases: a knob may be set
	// through either spelling; setting both to different values is a
	// conflict, not a precedence question.
	if !prefetchSpec.valid(o.Prefetch) {
		return fmt.Errorf("pmjoin: unknown prefetch mode %v", o.Prefetch)
	}
	if !prefetchSpec.valid(o.Pipeline.Prefetch) {
		return fmt.Errorf("pmjoin: unknown prefetch mode %v", o.Pipeline.Prefetch)
	}
	if o.Prefetch != PrefetchDefault && o.Pipeline.Prefetch != PrefetchDefault &&
		o.Prefetch != o.Pipeline.Prefetch {
		return fmt.Errorf("pmjoin: conflicting prefetch modes: deprecated Prefetch=%v but Pipeline.Prefetch=%v",
			o.Prefetch, o.Pipeline.Prefetch)
	}
	if o.Pipeline.Prefetch == PrefetchDefault {
		o.Pipeline.Prefetch = o.Prefetch
	}
	if o.Pipeline.Prefetch == PrefetchDefault {
		o.Pipeline.Prefetch = PrefetchOn
	}
	o.Prefetch = o.Pipeline.Prefetch
	if o.PrefetchDepth < 0 {
		return fmt.Errorf("pmjoin: negative prefetch depth %d", o.PrefetchDepth)
	}
	if o.Pipeline.PrefetchDepth < 0 {
		return fmt.Errorf("pmjoin: negative prefetch depth %d", o.Pipeline.PrefetchDepth)
	}
	if o.PrefetchDepth != 0 && o.Pipeline.PrefetchDepth != 0 &&
		o.PrefetchDepth != o.Pipeline.PrefetchDepth {
		return fmt.Errorf("pmjoin: conflicting prefetch depths: deprecated PrefetchDepth=%d but Pipeline.PrefetchDepth=%d",
			o.PrefetchDepth, o.Pipeline.PrefetchDepth)
	}
	if o.Pipeline.PrefetchDepth == 0 {
		o.Pipeline.PrefetchDepth = o.PrefetchDepth
	}
	o.PrefetchDepth = o.Pipeline.PrefetchDepth

	if !storageSpec.valid(o.Storage) {
		return fmt.Errorf("pmjoin: unknown storage mode %v", o.Storage)
	}
	if o.Storage == StorageDefault {
		o.Storage = StorageSim
	}

	if o.Sharding.Shards < 0 {
		return fmt.Errorf("pmjoin: negative shard count %d", o.Sharding.Shards)
	}
	if o.Sharding.Workers < 0 {
		return fmt.Errorf("pmjoin: negative shard workers %d", o.Sharding.Workers)
	}
	if o.Sharding.Workers > 0 && o.Sharding.Shards == 0 {
		return fmt.Errorf("pmjoin: Sharding.Workers=%d without Sharding.Shards; set Shards >= 1 to shard", o.Sharding.Workers)
	}
	if o.Sharding.Shards > 0 {
		switch o.Method {
		case RandomSC, SC, CC:
		default:
			return fmt.Errorf("pmjoin: sharding requires a clustered method (random-SC, SC or CC), got %v", o.Method)
		}
		if o.Sharding.Workers == 0 {
			o.Sharding.Workers = o.Sharding.Shards
			if g := runtime.GOMAXPROCS(0); g < o.Sharding.Workers {
				o.Sharding.Workers = g
			}
		}
	}
	return nil
}
