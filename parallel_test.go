package pmjoin

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"pmjoin/internal/dataset"
)

// deterministicFields strips the wall-clock execution profile and the metrics
// snapshot from a result, leaving exactly the fields the determinism contract
// covers.
func deterministicFields(r *Result) Result {
	c := *r
	c.Exec = ExecStats{}
	c.Metrics = nil
	return c
}

// TestParallelDeterminism is the public determinism contract: for every
// prediction-matrix method and every data kind, a join at Parallelism N
// produces a Result (Report, Pairs, matrix stats) and a Plan bit-for-bit
// identical to the serial run.
func TestParallelDeterminism(t *testing.T) {
	type workload struct {
		name string
		sys  *System
		a, b *Dataset
		opt  Options
	}
	var loads []workload

	{
		sys := NewSystem(DiskModel{PageBytes: 256})
		da, err := sys.AddVectors("a", randomVecs(400, 2, 1), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		db, err := sys.AddVectors("b", randomVecs(300, 2, 2), VectorOptions{})
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, workload{"vector", sys, da, db,
			Options{Epsilon: 0.05, BufferPages: 16, CollectPairs: true}})
	}
	{
		sys := NewSystem(DiskModel{PageBytes: 1024})
		ds, err := sys.AddSeries("walk", dataset.RandomWalk(4000, 20), SeriesOptions{Window: 32, Stride: 4})
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, workload{"series", sys, ds, ds,
			Options{Epsilon: 8.0, BufferPages: 16, CollectPairs: true}})
	}
	{
		sys := NewSystem(DiskModel{PageBytes: 512})
		sa := dataset.DNA(3000, 10)
		sb := dataset.DNA(2500, 11)
		dataset.PlantHomologies(sb, sa, 6, 80, 0.02, 12)
		da, err := sys.AddString("a", sa, StringOptions{Window: 64, Stride: 8})
		if err != nil {
			t.Fatal(err)
		}
		db, err := sys.AddString("b", sb, StringOptions{Window: 64, Stride: 8})
		if err != nil {
			t.Fatal(err)
		}
		loads = append(loads, workload{"string", sys, da, db,
			Options{Epsilon: 4, BufferPages: 16, CollectPairs: true}})
	}

	for _, w := range loads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			for _, m := range []Method{PMNLJ, SC, CC} {
				m := m
				t.Run(m.String(), func(t *testing.T) {
					opt := w.opt
					opt.Method = m
					opt.Parallelism = 1
					base, err := w.sys.Join(w.a, w.b, opt)
					if err != nil {
						t.Fatal(err)
					}
					if base.Count() == 0 {
						t.Fatal("workload has no results")
					}
					basePlan, err := w.sys.Explain(w.a, w.b, opt)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range []int{2, 4} {
						opt.Parallelism = par
						res, err := w.sys.Join(w.a, w.b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if got, want := deterministicFields(res), deterministicFields(base); !reflect.DeepEqual(got, want) {
							t.Errorf("Parallelism=%d result differs:\n serial:   %+v\n parallel: %+v", par, want, got)
						}
						if res.Exec.Workers != par {
							t.Errorf("Exec.Workers = %d, want %d", res.Exec.Workers, par)
						}
						plan, err := w.sys.Explain(w.a, w.b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(plan, basePlan) {
							t.Errorf("Parallelism=%d plan differs:\n serial:   %+v\n parallel: %+v", par, basePlan, plan)
						}
					}
				})
			}
		})
	}
}

// TestConcurrentJoinsOneSystem runs several joins on one System at once, each
// with its own worker pool, and checks every result against a solo baseline:
// the per-join disk session makes each run's account independent of the
// traffic around it.
func TestConcurrentJoinsOneSystem(t *testing.T) {
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(400, 2, 1), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(300, 2, 2), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}

	jobs := []Options{
		{Method: NLJ, Epsilon: 0.05, BufferPages: 8},
		{Method: PMNLJ, Epsilon: 0.05, BufferPages: 8, Parallelism: 2},
		{Method: SC, Epsilon: 0.05, BufferPages: 16, Parallelism: 3},
		{Method: CC, Epsilon: 0.07, BufferPages: 16, Parallelism: 2},
		{Method: SC, Epsilon: 0.07, BufferPages: 12, CollectPairs: true},
	}
	baselines := make([]*Result, len(jobs))
	for i, opt := range jobs {
		if baselines[i], err = sys.Join(da, db, opt); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	results := make([]*Result, len(jobs))
	errs := make([]error, len(jobs))
	for i, opt := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = sys.Join(da, db, opt)
		}()
	}
	wg.Wait()

	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		got, want := deterministicFields(results[i]), deterministicFields(baselines[i])
		if !reflect.DeepEqual(got, want) {
			t.Errorf("job %d (%v) concurrent result differs:\n solo:       %+v\n concurrent: %+v",
				i, jobs[i].Method, want, got)
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to the baseline
// (exited goroutines are reaped asynchronously).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutines leaked: %d running, started with %d", g, baseline)
	}
}

func TestJoinContextPreCancelled(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := sys.JoinContext(ctx, da, db, Options{Method: SC, Epsilon: 0.05, BufferPages: 8, Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Exec.Cancelled {
		t.Fatalf("result = %+v, want Exec.Cancelled", res)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pre-cancelled join took %v", d)
	}
	waitGoroutines(t, before)
}

func TestJoinContextMidJoinCancel(t *testing.T) {
	// A workload big enough that cancellation lands mid-run on any host; the
	// block boundaries of NLJ are the cancellation points.
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(3000, 2, 5), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := sys.JoinContext(ctx, da, da, Options{Method: NLJ, Epsilon: 0.05, BufferPages: 4, Parallelism: 2})
	if err == nil {
		t.Skip("join finished before the cancel landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Exec.Cancelled {
		t.Fatalf("result = %+v, want Exec.Cancelled", res)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled join took %v to return", d)
	}
	waitGoroutines(t, before)
}

func TestExplainContextPreCancelled(t *testing.T) {
	sys, da, db := smallVecSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.ExplainContext(ctx, da, db, Options{Method: SC, Epsilon: 0.05, BufferPages: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
