#!/usr/bin/env bash
# verify.sh — the correctness gate every change must pass.
#
# Order matters: cheap structural checks first, then the project lint suite
# (pmlint: buffer/I-O/determinism invariants the compiler cannot see), then
# the full test suite under the race detector.
#
# Usage: scripts/verify.sh [-short]
#   -short  passes -short to `go test` (skips the whole-module lint test,
#           which pmlint already covers here) and trims race-mode timeouts.
set -euo pipefail
cd "$(dirname "$0")/.."

SHORT_FLAG=""
if [[ "${1:-}" == "-short" ]]; then
  SHORT_FLAG="-short"
fi

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/pmjoind (serving daemon)"
# Build the daemon explicitly so a broken main package (which ./... already
# covers) fails with its own banner in the verify log.
go build -o /dev/null ./cmd/pmjoind

echo "==> go vet ./..."
go vet ./...

echo "==> pmlint ./..."
# -stats prints the rule count, finding count, and load/analyze wall time,
# so a slow or noisy lint gate is visible right here in the verify log.
go run ./cmd/pmlint -stats ./...

echo "==> determinism contracts (metrics observer + sharded execution + batch kernels + storage backends)"
# Run the dedicated contract tests on their own first: a bit-identical
# Report / Pairs / Plan with collection enabled is the invariant that keeps
# the metrics layer an observer rather than a participant, the same triple
# must be identical across shard worker counts and vs the unsharded executor
# at shards=1, cluster-batched kernel dispatch must reproduce the per-pair
# triple at any parallelism/sharding/prefetch combination, and the
# file-backed store (real encoded files, background prefetch readers) must
# reproduce the simulator's triple bit for bit.
go test -race -run 'TestMetricsDeterminism|TestShardDeterminism|TestBatchKernelsDeterminism|TestBackendParity' .

echo "==> go test -race ${SHORT_FLAG} ./..."
# Race instrumentation slows the experiment replications several-fold;
# give the heaviest package headroom beyond the 10m default.
go test -race -timeout=20m ${SHORT_FLAG} ./...

echo "==> pmjoind load smoke (benchrunner -exp load)"
# Drives the real joinsvc handler stack with 8 concurrent clients in an
# open/query/cancel/explain mix. LoadBench exits nonzero if any request is
# lost or any concurrent report diverges from its solo baseline, so this is
# the serving-mode acceptance gate, not just a benchmark.
# The latency sidecar (BENCH_load.json) goes to a scratch dir here; CI
# passes -csv artifacts instead and uploads it.
go run ./cmd/benchrunner -exp load -scale 0.1 -csv "$(mktemp -d)"

echo "verify: OK"
