package pmjoin

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func queryFixture(t *testing.T) (*System, *Dataset, [][]float64) {
	t.Helper()
	vecs := randomVecs(500, 2, 40)
	sys := NewSystem(DiskModel{PageBytes: 256})
	ds, err := sys.AddVectors("pts", vecs, VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys, ds, vecs
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	sys, ds, vecs := queryFixture(t)
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		center := []float64{rng.Float64(), rng.Float64()}
		eps := 0.02 + rng.Float64()*0.1
		res, err := sys.RangeQuery(ds, center, eps, 8)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for id, v := range vecs {
			d := math.Hypot(v[0]-center[0], v[1]-center[1])
			if d <= eps {
				want = append(want, id)
			}
		}
		sort.Ints(want)
		if len(res.IDs) != len(want) {
			t.Fatalf("iter %d: %d results, want %d", iter, len(res.IDs), len(want))
		}
		for i := range want {
			if res.IDs[i] != want[i] {
				t.Fatal("result mismatch")
			}
		}
		if len(res.IDs) > 0 && (res.PageReads == 0 || res.IOSeconds <= 0) {
			t.Fatal("query I/O not charged")
		}
		if res.PageReads > int64(ds.Pages()) {
			t.Fatal("range query read more pages than exist")
		}
	}
}

func TestNearestNeighborsMatchBruteForce(t *testing.T) {
	sys, ds, vecs := queryFixture(t)
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 25; iter++ {
		center := []float64{rng.Float64(), rng.Float64()}
		k := 1 + rng.Intn(12)
		res, err := sys.NearestNeighbors(ds, center, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != k || len(res.Distances) != k {
			t.Fatalf("got %d results for k=%d", len(res.IDs), k)
		}
		dists := make([]float64, len(vecs))
		for id, v := range vecs {
			dists[id] = math.Hypot(v[0]-center[0], v[1]-center[1])
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		for i := 0; i < k; i++ {
			if d := res.Distances[i] - sorted[i]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("iter %d: distance %d = %g, want %g", iter, i, res.Distances[i], sorted[i])
			}
			if d := dists[res.IDs[i]] - res.Distances[i]; d > 1e-12 || d < -1e-12 {
				t.Fatal("ID does not match its distance")
			}
		}
	}
}

func TestNearestNeighborsPrunesPages(t *testing.T) {
	sys, ds, _ := queryFixture(t)
	res, err := sys.NearestNeighbors(ds, []float64{0.5, 0.5}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Best-first search should touch a small fraction of the pages.
	if res.PageReads > int64(ds.Pages())/2 {
		t.Fatalf("kNN read %d of %d pages", res.PageReads, ds.Pages())
	}
}

func TestQueryOptionsMaxResults(t *testing.T) {
	sys, ds, vecs := queryFixture(t)
	center := []float64{0.5, 0.5}
	full, err := sys.RangeQueryOpts(ds, center, 0.3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) < 3 {
		t.Fatalf("workload too sparse: %d in range", len(full.IDs))
	}
	if full.Truncated {
		t.Fatal("uncapped query reported truncation")
	}

	capped, err := sys.RangeQueryOpts(ds, center, 0.3, QueryOptions{MaxResults: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.IDs) != 2 || !capped.Truncated {
		t.Fatalf("capped range query: %d IDs, truncated=%v", len(capped.IDs), capped.Truncated)
	}
	// The cap keeps the smallest IDs (result order is ascending ID).
	if capped.IDs[0] != full.IDs[0] || capped.IDs[1] != full.IDs[1] {
		t.Fatalf("capped IDs %v, full prefix %v", capped.IDs, full.IDs[:2])
	}

	nn, err := sys.NearestNeighborsOpts(ds, center, 10, QueryOptions{MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(nn.IDs) != 3 || !nn.Truncated {
		t.Fatalf("capped kNN: %d IDs, truncated=%v", len(nn.IDs), nn.Truncated)
	}
	// Still the true 3 nearest.
	dists := make([]float64, 0, len(vecs))
	for _, v := range vecs {
		dists = append(dists, math.Hypot(v[0]-center[0], v[1]-center[1]))
	}
	sort.Float64s(dists)
	for i := range nn.Distances {
		if d := nn.Distances[i] - dists[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("capped kNN distance %d = %g, want %g", i, nn.Distances[i], dists[i])
		}
	}
}

// TestDeprecatedQueryWrappersAgree pins the compatibility contract: the old
// positional signatures and the QueryOptions variants return identical
// results for the same parameters.
func TestDeprecatedQueryWrappersAgree(t *testing.T) {
	sys, ds, _ := queryFixture(t)
	center := []float64{0.4, 0.6}
	oldR, err := sys.RangeQuery(ds, center, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	newR, err := sys.RangeQueryOpts(ds, center, 0.2, QueryOptions{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(oldR.IDs) != len(newR.IDs) || oldR.PageReads != newR.PageReads || oldR.IOSeconds != newR.IOSeconds {
		t.Fatalf("range wrappers disagree: %+v vs %+v", oldR, newR)
	}
	oldN, err := sys.NearestNeighbors(ds, center, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	newN, err := sys.NearestNeighborsOpts(ds, center, 5, QueryOptions{BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(oldN.IDs) != len(newN.IDs) || oldN.PageReads != newN.PageReads {
		t.Fatalf("kNN wrappers disagree: %+v vs %+v", oldN, newN)
	}
	for i := range oldN.IDs {
		if oldN.IDs[i] != newN.IDs[i] {
			t.Fatal("kNN wrapper ID mismatch")
		}
	}
}

func TestQueryValidation(t *testing.T) {
	sys, ds, _ := queryFixture(t)
	if _, err := sys.RangeQuery(ds, []float64{0.5}, 0.1, 8); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := sys.RangeQuery(ds, []float64{0.5, 0.5}, -1, 8); err == nil {
		t.Fatal("negative eps accepted")
	}
	if _, err := sys.RangeQuery(ds, []float64{0.5, 0.5}, 0.1, 0); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := sys.NearestNeighbors(ds, []float64{0.5, 0.5}, 0, 8); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := sys.RangeQueryOpts(ds, []float64{0.5, 0.5}, 0.1, QueryOptions{BufferPages: -1}); err == nil {
		t.Fatal("negative buffer accepted")
	}
	if _, err := sys.RangeQueryOpts(ds, []float64{0.5, 0.5}, 0.1, QueryOptions{MaxResults: -1}); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
	other := New()
	dc, err := other.AddVectors("c", randomVecs(64, 2, 43), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RangeQuery(dc, []float64{0.5, 0.5}, 0.1, 8); err == nil {
		t.Fatal("cross-system query accepted")
	}
	seq, err := sys.AddString("s", []byte("ACGTACGTACGTACGTACGT"), StringOptions{Window: 8, Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NearestNeighbors(seq, []float64{0, 0, 0, 0}, 1, 8); err == nil {
		t.Fatal("sequence kNN accepted")
	}
}
