package pmjoin

import (
	"fmt"
	"strings"
)

// enumSpec is the single table behind every exported enum's String /
// MarshalText / UnmarshalText / Parse quartet. Each enum used to hand-roll
// the four methods (five enums x ~60 lines of switches); the table keeps the
// canonical spellings in one slice per enum and derives everything — the
// round-trip forms, the normalized parse index, and the "(want ...)" hint in
// parse errors — from it, so a new value is one string in one list.
type enumSpec[T ~int] struct {
	typeName string // Go type name, for the out-of-range String form
	kind     string // error noun: "method", "kind", "replacement policy", ...
	names    []string
	hint     string // "NLJ, pm-NLJ, ... or PBSM"
	// allowEmpty parses "" to the zero value — the mode enums treat an unset
	// flag as their Default value.
	allowEmpty bool
	byNorm     map[string]T
}

func newEnum[T ~int](typeName, kind string, names []string, allowEmpty bool) *enumSpec[T] {
	s := &enumSpec[T]{
		typeName:   typeName,
		kind:       kind,
		names:      names,
		allowEmpty: allowEmpty,
		byNorm:     make(map[string]T, len(names)),
	}
	for i, n := range names {
		s.byNorm[normalizeEnum(n)] = T(i)
	}
	s.hint = names[len(names)-1]
	if len(names) > 1 {
		s.hint = strings.Join(names[:len(names)-1], ", ") + " or " + s.hint
	}
	return s
}

// valid reports whether v is a declared value; Options.Validate's range
// checks route through this so they cannot drift from the tables.
func (s *enumSpec[T]) valid(v T) bool { return v >= 0 && int(v) < len(s.names) }

func (s *enumSpec[T]) string(v T) string {
	if !s.valid(v) {
		return fmt.Sprintf("%s(%d)", s.typeName, int(v))
	}
	return s.names[v]
}

func (s *enumSpec[T]) marshal(v T) ([]byte, error) {
	if !s.valid(v) {
		return nil, fmt.Errorf("pmjoin: unknown %s %d", s.kind, int(v))
	}
	return []byte(s.names[v]), nil
}

func (s *enumSpec[T]) parse(str string) (T, error) {
	n := normalizeEnum(str)
	if n == "" && s.allowEmpty {
		var zero T
		return zero, nil
	}
	if v, ok := s.byNorm[n]; ok {
		return v, nil
	}
	var zero T
	return zero, fmt.Errorf("pmjoin: unknown %s %q (want %s)", s.kind, str, s.hint)
}

func (s *enumSpec[T]) unmarshal(dst *T, text []byte) error {
	v, err := s.parse(string(text))
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// normalizeEnum lower-cases a name and strips the separators the canonical
// spellings use, so flag values round-trip however the user hyphenates.
func normalizeEnum(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "_", "")
	return s
}

// Method selects the join algorithm.
type Method int

const (
	// NLJ is block nested loop join (the no-information baseline, §2.1).
	NLJ Method = iota
	// PMNLJ restricts NLJ to the marked prediction-matrix entries (§6).
	PMNLJ
	// RandomSC is square clustering with clusters processed in random
	// order (isolates the scheduling optimization, §9.1).
	RandomSC
	// SC is square clustering with greedy sharing-graph scheduling — the
	// paper's primary technique (§7.1, §8).
	SC
	// CC is cost-based clustering with greedy scheduling, the approximate
	// I/O lower bound (§7.2).
	CC
	// EGO is the epsilon grid ordering join baseline (§9).
	EGO
	// BFRJ is the breadth-first R-tree join baseline (§9).
	BFRJ
	// PBSM is the Partition Based Spatial-Merge join of Patel & DeWitt,
	// surveyed in §2.1 — an extension baseline beyond the paper's
	// evaluation, available for vector data only.
	PBSM
)

var methodSpec = newEnum[Method]("Method", "method",
	[]string{"NLJ", "pm-NLJ", "random-SC", "SC", "CC", "EGO", "BFRJ", "PBSM"}, false)

func (m Method) String() string { return methodSpec.string(m) }

// MarshalText implements encoding.TextMarshaler; the text form is the
// canonical name ("SC", "pm-NLJ", ...).
func (m Method) MarshalText() ([]byte, error) { return methodSpec.marshal(m) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParseMethod.
func (m *Method) UnmarshalText(text []byte) error { return methodSpec.unmarshal(m, text) }

// ParseMethod parses a method name. Matching is case-insensitive and
// ignores hyphens, so "pm-NLJ", "pmnlj" and "PM-nlj" all parse to PMNLJ.
func ParseMethod(s string) (Method, error) { return methodSpec.parse(s) }

var kindSpec = newEnum[Kind]("Kind", "kind",
	[]string{"vector", "series", "string"}, false)

func (k Kind) String() string { return kindSpec.string(k) }

// MarshalText implements encoding.TextMarshaler; the text form is the
// canonical name ("vector", "series", "string").
func (k Kind) MarshalText() ([]byte, error) { return kindSpec.marshal(k) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParseKind.
func (k *Kind) UnmarshalText(text []byte) error { return kindSpec.unmarshal(k, text) }

// ParseKind parses a data-kind name (case-insensitive).
func ParseKind(s string) (Kind, error) { return kindSpec.parse(s) }

// ReplacementPolicy selects the buffer replacement policy.
type ReplacementPolicy int

const (
	// LRU is the paper's default policy.
	LRU ReplacementPolicy = iota
	// FIFO is provided for the replacement ablation.
	FIFO
)

var policySpec = newEnum[ReplacementPolicy]("ReplacementPolicy", "replacement policy",
	[]string{"LRU", "FIFO"}, false)

func (p ReplacementPolicy) String() string { return policySpec.string(p) }

// MarshalText implements encoding.TextMarshaler.
func (p ReplacementPolicy) MarshalText() ([]byte, error) { return policySpec.marshal(p) }

// UnmarshalText implements encoding.TextUnmarshaler; see
// ParseReplacementPolicy.
func (p *ReplacementPolicy) UnmarshalText(text []byte) error { return policySpec.unmarshal(p, text) }

// ParseReplacementPolicy parses a policy name (case-insensitive).
func ParseReplacementPolicy(s string) (ReplacementPolicy, error) { return policySpec.parse(s) }

// KernelMode selects whether joins use the threshold-aware distance kernels
// of internal/kernel for their CPU hot path. The kernels are exact: Report,
// Pairs and Plan are bit-identical in either mode, so the knob only exists
// as an escape hatch and for differential testing.
type KernelMode int

const (
	// KernelsDefault resolves to KernelsOn in Validate.
	KernelsDefault KernelMode = iota
	// KernelsOn uses the allocation-free early-exiting kernels (default).
	KernelsOn
	// KernelsOff keeps the reference comparison loops.
	KernelsOff
)

var kernelSpec = newEnum[KernelMode]("KernelMode", "kernel mode",
	[]string{"default", "on", "off"}, true)

func (k KernelMode) String() string { return kernelSpec.string(k) }

// MarshalText implements encoding.TextMarshaler.
func (k KernelMode) MarshalText() ([]byte, error) { return kernelSpec.marshal(k) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParseKernelMode.
func (k *KernelMode) UnmarshalText(text []byte) error { return kernelSpec.unmarshal(k, text) }

// ParseKernelMode parses a kernel mode name (case-insensitive; "" parses to
// KernelsDefault).
func ParseKernelMode(s string) (KernelMode, error) { return kernelSpec.parse(s) }

// KernelBatchMode selects whether clustered joins dispatch each batchable
// cluster's marked page pairs as one whole-cluster block evaluation (one flat
// row-major block per cluster side, SIMD streamed across page boundaries)
// instead of a kernel call per page pair. Batching never changes Report,
// Pairs or Plan — the block path replays the per-pair fetch sequence and
// folds counters per cell in the per-pair order — so the knob only exists as
// an escape hatch and for differential testing. Only non-self vector/series
// joins with kernels on are batchable; everything else keeps the per-pair
// path silently.
type KernelBatchMode int

const (
	// KernelBatchDefault resolves to KernelBatchOn in Validate.
	KernelBatchDefault KernelBatchMode = iota
	// KernelBatchOn evaluates batchable clusters as block tasks (default).
	KernelBatchOn
	// KernelBatchOff keeps the per-page-pair kernel dispatch.
	KernelBatchOff
)

var kernelBatchSpec = newEnum[KernelBatchMode]("KernelBatchMode", "kernel batch mode",
	[]string{"default", "on", "off"}, true)

func (k KernelBatchMode) String() string { return kernelBatchSpec.string(k) }

// MarshalText implements encoding.TextMarshaler.
func (k KernelBatchMode) MarshalText() ([]byte, error) { return kernelBatchSpec.marshal(k) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParseKernelBatchMode.
func (k *KernelBatchMode) UnmarshalText(text []byte) error { return kernelBatchSpec.unmarshal(k, text) }

// ParseKernelBatchMode parses a kernel batch mode name (case-insensitive; ""
// parses to KernelBatchDefault).
func ParseKernelBatchMode(s string) (KernelBatchMode, error) { return kernelBatchSpec.parse(s) }

// PrefetchMode selects whether clustered joins pipeline the next cluster's
// page reads behind the current cluster's CPU phase (double buffering through
// the staged-frame prefetch path). Prefetch never changes Report, Pairs or
// Plan — the staged admissions replay the exact hit/miss/eviction/read
// sequence of the unpipelined run — so the knob only exists as an escape
// hatch, for differential testing, and for the pipeline benchmark baseline.
type PrefetchMode int

const (
	// PrefetchDefault resolves to PrefetchOn in Validate.
	PrefetchDefault PrefetchMode = iota
	// PrefetchOn overlaps the successor cluster's reads with the current
	// cluster's comparisons (default; LRU policy only — FIFO runs stay
	// unpipelined silently, since FIFO insertion order is not
	// prefetch-invariant).
	PrefetchOn
	// PrefetchOff issues every read at demand time (the serial timeline).
	PrefetchOff
)

var prefetchSpec = newEnum[PrefetchMode]("PrefetchMode", "prefetch mode",
	[]string{"default", "on", "off"}, true)

func (p PrefetchMode) String() string { return prefetchSpec.string(p) }

// MarshalText implements encoding.TextMarshaler.
func (p PrefetchMode) MarshalText() ([]byte, error) { return prefetchSpec.marshal(p) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParsePrefetchMode.
func (p *PrefetchMode) UnmarshalText(text []byte) error { return prefetchSpec.unmarshal(p, text) }

// ParsePrefetchMode parses a prefetch mode name (case-insensitive; "" parses
// to PrefetchDefault).
func ParsePrefetchMode(s string) (PrefetchMode, error) { return prefetchSpec.parse(s) }

// StorageMode selects the physical page source behind a join run: the
// in-memory simulator (reads cost nothing in wall time; only the linear disk
// model is charged) or the file-backed store attached to the System
// (System.UseFileStore), where page payloads are decoded from real files
// with measured latencies. The logical account is identical either way —
// Report, Pairs and Plan are bit-for-bit independent of this knob (pinned by
// TestBackendParity); only ExecStats' measured I/O fields differ.
type StorageMode int

const (
	// StorageDefault resolves to StorageSim in Validate.
	StorageDefault StorageMode = iota
	// StorageSim serves page payloads from memory (the seed behavior).
	StorageSim
	// StorageFile serves page payloads through the System's file-backed
	// store; Join fails if none is attached.
	StorageFile
)

var storageSpec = newEnum[StorageMode]("StorageMode", "storage mode",
	[]string{"default", "sim", "file"}, true)

func (s StorageMode) String() string { return storageSpec.string(s) }

// MarshalText implements encoding.TextMarshaler.
func (s StorageMode) MarshalText() ([]byte, error) { return storageSpec.marshal(s) }

// UnmarshalText implements encoding.TextUnmarshaler; see ParseStorageMode.
func (s *StorageMode) UnmarshalText(text []byte) error { return storageSpec.unmarshal(s, text) }

// ParseStorageMode parses a storage mode name (case-insensitive; "" parses
// to StorageDefault).
func ParseStorageMode(s string) (StorageMode, error) { return storageSpec.parse(s) }
