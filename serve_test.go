package pmjoin

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, so ServeOptions) (*Server, *Dataset, *Dataset) {
	t.Helper()
	sys := NewSystem(DiskModel{PageBytes: 256})
	da, err := sys.AddVectors("a", randomVecs(400, 2, 1), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := sys.AddVectors("b", randomVecs(300, 2, 2), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := NewServer(sys, so)
	if err != nil {
		t.Fatal(err)
	}
	return sv, da, db
}

func TestServeOptionsDefaults(t *testing.T) {
	o := ServeOptions{}.withDefaults()
	if o.SharedFrames != 4096 || o.AdmitFrames != 4*4096 || o.QueueDepth != 64 ||
		o.QueueTimeout != 5*time.Second || o.PlanCacheEntries != 128 || o.RecentJoins != 64 {
		t.Fatalf("defaults = %+v", o)
	}
	// Negative SharedFrames disables the cache but still needs a budget.
	o = ServeOptions{SharedFrames: -1}.withDefaults()
	if o.AdmitFrames != 4*4096 {
		t.Fatalf("disabled-cache budget = %d", o.AdmitFrames)
	}
	sv, _, _ := newTestServer(t, ServeOptions{SharedFrames: -1})
	if sv.shared != nil {
		t.Fatal("negative SharedFrames must disable the shared pool")
	}
}

// TestServerConcurrentBitIdentical is the serving-layer determinism gate: many
// concurrent Server.Join calls — all sharing one concurrent frame cache, some
// sharded — must each return a Result bit-identical (deterministic fields) to
// a solo System.Join with the same Options. Run under -race in CI.
func TestServerConcurrentBitIdentical(t *testing.T) {
	sv, da, db := newTestServer(t, ServeOptions{SharedFrames: 256, PoolShards: 4})
	sys := sv.System()

	jobs := []Options{
		{Method: SC, Epsilon: 0.05, BufferPages: 16, CollectPairs: true},
		{Method: SC, Epsilon: 0.05, BufferPages: 16, CollectPairs: true}, // duplicate: same frames reused
		{Method: CC, Epsilon: 0.07, BufferPages: 16, Parallelism: 2},
		{Method: PMNLJ, Epsilon: 0.05, BufferPages: 8},
		{Method: SC, Epsilon: 0.07, BufferPages: 12, Sharding: ShardingOptions{Shards: 3, Workers: 2}},
		{Method: NLJ, Epsilon: 0.05, BufferPages: 8},
		{Method: SC, Epsilon: 0.05, BufferPages: 24, Pipeline: PipelineOptions{Prefetch: PrefetchOff}},
		{Method: CC, Epsilon: 0.05, BufferPages: 16, CollectPairs: true, Seed: 7},
	}
	baselines := make([]*Result, len(jobs))
	for i, opt := range jobs {
		var err error
		if baselines[i], err = sys.Join(da, db, opt); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 2 // second round hits the warm shared cache
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		results := make([]*Result, len(jobs))
		errs := make([]error, len(jobs))
		for i, opt := range jobs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i], errs[i] = sv.Join(context.Background(), da, db, opt)
			}()
		}
		wg.Wait()
		for i := range jobs {
			if errs[i] != nil {
				t.Fatalf("round %d job %d: %v", round, i, errs[i])
			}
			got, want := deterministicFields(results[i]), deterministicFields(baselines[i])
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round %d job %d (%v) served result differs from solo:\n solo:   %+v\n served: %+v",
					round, i, jobs[i].Method, want, got)
			}
		}
	}

	st := sv.Stats()
	if st.Admitted != int64(rounds*len(jobs)) || st.Completed != int64(rounds*len(jobs)) {
		t.Fatalf("admission accounting: %+v", st)
	}
	if st.Rejected != 0 || st.DeadlineExpired != 0 || st.Failed != 0 {
		t.Fatalf("unexpected rejections: %+v", st)
	}
	if st.FoldedRuns != st.Completed {
		t.Fatalf("folded %d runs, completed %d", st.FoldedRuns, st.Completed)
	}
	if st.Shared.Published == 0 {
		t.Fatalf("shared cache saw no traffic: %+v", st.Shared)
	}
	if st.InUseFrames != 0 || st.Queued != 0 {
		t.Fatalf("admission state not drained: %+v", st)
	}
	// The folded service metrics keep the phases-sum-to-totals invariant.
	m := sv.Metrics()
	sum := m.Phases[0].Disk
	for _, ps := range m.Phases[1:] {
		sum = sum.Add(ps.Disk)
	}
	if sum != m.Disk {
		t.Fatalf("folded metrics broke invariant: phases %+v total %+v", sum, m.Disk)
	}
}

func TestAdmitterQueueFullAndDeadline(t *testing.T) {
	ad := &admitter{budget: 10, queueCap: 1, timeout: 20 * time.Millisecond}
	ctx := context.Background()
	if err := ad.acquire(ctx, 10); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue and times out at the deadline.
	errCh := make(chan error, 1)
	go func() { errCh <- ad.acquire(ctx, 5) }()
	// Wait until it is queued, then a second arrival overflows the queue.
	for {
		_, _, _, _, _, queued, _ := ad.snapshot()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := ad.acquire(ctx, 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire err = %v, want ErrOverloaded", err)
	}
	if err := <-errCh; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline acquire err = %v, want ErrOverloaded", err)
	}
	admitted, rejected, expired, inUse, _, queued, _ := ad.snapshot()
	if admitted != 1 || rejected != 1 || expired != 1 || inUse != 10 || queued != 0 {
		t.Fatalf("counters: admitted=%d rejected=%d expired=%d inUse=%d queued=%d",
			admitted, rejected, expired, inUse, queued)
	}

	// Release unblocks a fresh waiter immediately.
	ad.release(10)
	if err := ad.acquire(ctx, 10); err != nil {
		t.Fatal(err)
	}
	ad.release(10)
}

func TestAdmitterFIFOAndOversize(t *testing.T) {
	ad := &admitter{budget: 10, queueCap: 8, timeout: time.Second}
	ctx := context.Background()
	// An oversized request clamps to the whole budget instead of deadlocking
	// behind an unreachable threshold, and its release clamps to match.
	if err := ad.acquire(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	ad.release(1000)
	if _, _, _, inUse, _, _, _ := ad.snapshot(); inUse != 0 {
		t.Fatalf("inUse = %d after oversized release", inUse)
	}

	// Strict FIFO: a small waiter never jumps a blocked head waiter even when
	// the budget has room for it.
	if err := ad.acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- ad.acquire(ctx, 8) }() // 4+8 > 10: queues at head
	for {
		_, _, _, _, _, queued, _ := ad.snapshot()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- ad.acquire(ctx, 2) }() // 4+2 <= 10 but behind the head
	for {
		_, _, _, _, _, queued, _ := ad.snapshot()
		if queued == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done2:
		t.Fatal("small waiter jumped the blocked head of the queue")
	case <-time.After(30 * time.Millisecond):
	}
	ad.release(4) // head fits now; both drain in order
	if err := <-done1; err != nil {
		t.Fatal(err)
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	ad.release(8)
	ad.release(2)
	if _, _, _, inUse, _, _, _ := ad.snapshot(); inUse != 0 {
		t.Fatalf("inUse = %d after full release", inUse)
	}
}

func TestAdmitterCancelWhileQueued(t *testing.T) {
	ad := &admitter{budget: 4, queueCap: 4, timeout: time.Minute}
	if err := ad.acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- ad.acquire(ctx, 4) }()
	for {
		_, _, _, _, _, queued, _ := ad.snapshot()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not absorb a later grant.
	ad.release(4)
	if err := ad.acquire(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectionAccounting drives the server into overload and checks
// rejected requests surface ErrOverloaded, never run, and are accounted.
func TestServerRejectionAccounting(t *testing.T) {
	// Budget of one request; no queue to speak of.
	sv, da, db := newTestServer(t, ServeOptions{
		SharedFrames: 64, AdmitFrames: 16, QueueDepth: 1, QueueTimeout: 30 * time.Millisecond,
	})
	opt := Options{Method: SC, Epsilon: 0.05, BufferPages: 16}

	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = sv.Join(context.Background(), da, db, opt)
		}()
	}
	wg.Wait()

	var ok, overloaded int
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			overloaded++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}
	st := sv.Stats()
	if st.Completed != int64(ok) || st.Failed != int64(overloaded) {
		t.Fatalf("ok=%d overloaded=%d but stats %+v", ok, overloaded, st)
	}
	if st.Rejected+st.DeadlineExpired != int64(overloaded) {
		t.Fatalf("rejection split: %+v vs %d overloaded", st, overloaded)
	}
	_, recent := sv.Joins()
	var rejected int
	for _, j := range recent {
		if j.State == StateRejected {
			rejected++
			if j.Err == "" {
				t.Fatalf("rejected status lost its error: %+v", j)
			}
		}
	}
	if rejected != overloaded {
		t.Fatalf("recent ring shows %d rejections, want %d", rejected, overloaded)
	}
}

func TestServerJoinsRegistry(t *testing.T) {
	sv, da, db := newTestServer(t, ServeOptions{RecentJoins: 2})
	opt := Options{Method: SC, Epsilon: 0.05, BufferPages: 16}
	for i := 0; i < 4; i++ {
		if _, err := sv.Join(context.Background(), da, db, opt); err != nil {
			t.Fatal(err)
		}
	}
	active, recent := sv.Joins()
	if len(active) != 0 {
		t.Fatalf("active after completion: %+v", active)
	}
	if len(recent) != 2 {
		t.Fatalf("recent ring size = %d, want 2", len(recent))
	}
	if recent[0].ID != 3 || recent[1].ID != 4 {
		t.Fatalf("ring kept wrong entries: %+v", recent)
	}
	for _, j := range recent {
		if j.State != StateDone || j.Results == 0 || j.Left != "a" || j.Right != "b" || j.Method != "SC" {
			t.Fatalf("status: %+v", j)
		}
	}
}

func TestServerExplainCached(t *testing.T) {
	sv, da, db := newTestServer(t, ServeOptions{PlanCacheEntries: 2})
	opt := Options{Method: SC, Epsilon: 0.05, BufferPages: 16}

	// Concurrent cold start: one build, everyone adopts the same plan.
	const callers = 8
	var wg sync.WaitGroup
	plans := make([]*Plan, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := sv.ExplainCached(context.Background(), da, db, opt)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent callers got different plan instances")
		}
	}

	// A warm repeat is a hit on the same instance.
	p2, err := sv.ExplainCached(context.Background(), da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != plans[0] {
		t.Fatal("warm lookup returned a different plan")
	}
	st := sv.Stats()
	if st.PlanHits == 0 {
		t.Fatalf("no plan hits recorded: %+v", st)
	}

	// The plan matches an uncached Explain bit for bit.
	direct, err := sv.System().Explain(da, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p2, direct) {
		t.Fatalf("cached plan differs from direct Explain:\n cached: %+v\n direct: %+v", p2, direct)
	}

	// Eviction keeps the cache bounded; distinct options are distinct keys.
	for _, eps := range []float64{0.06, 0.07, 0.08} {
		o := opt
		o.Epsilon = eps
		if _, err := sv.ExplainCached(context.Background(), da, db, o); err != nil {
			t.Fatal(err)
		}
	}
	sv.planMu.Lock()
	n, ord := len(sv.plans), len(sv.planOrder)
	sv.planMu.Unlock()
	if n > 2 || ord != n {
		t.Fatalf("plan cache grew past bound: %d entries, %d order", n, ord)
	}
}

func TestServerValidatesBeforeAdmission(t *testing.T) {
	sv, da, db := newTestServer(t, ServeOptions{})
	if _, err := sv.Join(context.Background(), da, db, Options{Method: SC, Epsilon: 0.05, BufferPages: 1}); err == nil {
		t.Fatal("invalid options accepted")
	}
	st := sv.Stats()
	if st.Admitted != 0 || st.Failed != 0 {
		t.Fatalf("invalid request touched admission: %+v", st)
	}
	other := NewSystem(DefaultDiskModel())
	dx, err := other.AddVectors("x", randomVecs(50, 2, 9), VectorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Join(context.Background(), da, dx, Options{Method: SC, Epsilon: 0.05, BufferPages: 16}); err == nil {
		t.Fatal("foreign dataset accepted")
	}
	_ = db
}
